// Overload behaviour: bounded-queue shedding, per-client caps, and
// graceful drain. These tests substitute the run seams with gated
// computations so saturation and drain are reached deterministically,
// not by racing real simulations.

package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/cpu"
	"repro/internal/dvfs"
	"repro/internal/inject"
	"repro/internal/sim"
)

// waitUntil polls cond for up to two seconds.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// evalBody renders a distinct, valid eval spec; seed varies the cache key.
func evalBody(t *testing.T, seed int64) string {
	t.Helper()
	b, err := json.Marshal(sim.RowSpec{
		Scheme: sim.EightT, Benchmark: "basicmath", MV: 400,
		Maps: 1, Seed: seed, Instructions: 1000, CPU: cpu.DefaultConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// shedBodies builds one valid request body per run endpoint, so the
// shed path is exercised table-driven across the whole surface.
func shedBodies(t *testing.T) map[string]string {
	t.Helper()
	bodies := make(map[string]string)
	add := func(path string, spec any) {
		b, err := json.Marshal(spec)
		if err != nil {
			t.Fatal(err)
		}
		bodies[path] = string(b)
	}
	add("/v1/eval", sim.RowSpec{
		Scheme: sim.EightT, Benchmark: "basicmath", MV: 400,
		Maps: 1, Seed: 99, Instructions: 1000, CPU: cpu.DefaultConfig(),
	})
	add("/v1/sweep", SweepSpec{
		Schemes: []sim.Scheme{sim.EightT}, Benchmarks: []string{"basicmath"},
		MVs: []int{400}, Instructions: 1000,
	})
	add("/v1/chaos", sim.ChaosSpec{
		Benchmark: "qsort", DieSeed: 3, WorkSeed: 1,
		Inject:  inject.Params{Seed: 9, Intensity: 5},
		StartMV: 400, Epochs: 2, EpochInstructions: 1000,
		CPU:     cpu.DefaultConfig(),
		Backoff: dvfs.BackoffConfig{UpThreshold: 3, DownThreshold: 2, StableEpochs: 2},
	})
	add("/v1/hier", sim.HierSpec{
		Scheme: sim.FFWBBR, Instructions: 1000, CPU: cpu.DefaultConfig(),
		Cores: []sim.HierCoreSpec{{Benchmark: "qsort", MV: 400, MapSeed: 3, WorkSeed: 1}},
	})
	add("/v1/die", sim.DieSpec{
		Scheme: sim.EightT, Benchmark: "basicmath", Instructions: 1000,
		CPU: cpu.DefaultConfig(),
	})
	return bodies
}

// TestSaturatedQueueSheds fills one run slot and one queue slot with
// blocked eval requests, then asserts — for every run endpoint — that
// the next request is shed instantly with 503, a Retry-After header,
// and the JSON envelope, while the admitted requests still complete.
func TestSaturatedQueueSheds(t *testing.T) {
	for path, body := range shedBodies(t) {
		t.Run(path, func(t *testing.T) {
			// PerClient/PerHost -1: all three requests share the test
			// client's address; the concurrency caps have their own tests.
			s, ts := newTestServer(t, Config{Workers: 1, MaxActive: 1, MaxQueue: 1, PerClient: -1, PerHost: -1, RetryAfter: 2 * time.Second})
			started := make(chan struct{}, 4)
			release := make(chan struct{})
			s.runRow = func(ctx context.Context, spec sim.RowSpec) (sim.RowResult, error) {
				started <- struct{}{}
				select {
				case <-release:
					return fakeRow(ctx, spec)
				case <-ctx.Done():
					return sim.RowResult{}, ctx.Err()
				}
			}

			type outcome struct {
				status int
				body   []byte
			}
			results := make(chan outcome, 2)
			blocked := func(seed int64) {
				status, data, _ := post(t, ts.URL, "/v1/eval", evalBody(t, seed), nil)
				results <- outcome{status, data}
			}
			// A: admitted and computing.
			go blocked(1)
			<-started
			// B: holds the single queue slot, waiting for the run token.
			go blocked(2)
			waitUntil(t, "request queued", func() bool { return s.adm.queued() == 1 })

			// C: the queue is full — shed now, regardless of endpoint.
			status, data, hdr := post(t, ts.URL, path, body, nil)
			if status != http.StatusServiceUnavailable {
				t.Fatalf("shed status = %d, want 503: %s", status, data)
			}
			ra, err := strconv.Atoi(hdr.Get("Retry-After"))
			if err != nil || ra < 1 {
				t.Fatalf("Retry-After = %q, want a positive integer", hdr.Get("Retry-After"))
			}
			var eb errBody
			if err := json.Unmarshal(data, &eb); err != nil {
				t.Fatalf("shed body not JSON: %v: %s", err, data)
			}
			if eb.Code != "overloaded" || eb.RetryAfterS != int64(ra) {
				t.Fatalf("shed envelope %+v, want code overloaded echoing Retry-After %d", eb, ra)
			}

			// The admitted pair still completes once unblocked.
			close(release)
			for i := 0; i < 2; i++ {
				out := <-results
				if out.status != http.StatusOK {
					t.Fatalf("admitted request got %d: %s", out.status, out.body)
				}
			}
			if shed := s.Stats().Admission.Shed; shed != 1 {
				t.Fatalf("shed counter = %d, want 1", shed)
			}
		})
	}
}

func TestPerClientCapReturns429(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, MaxActive: 2, MaxQueue: 2, PerClient: 1})
	started := make(chan struct{}, 4)
	release := make(chan struct{})
	s.runRow = func(ctx context.Context, spec sim.RowSpec) (sim.RowResult, error) {
		started <- struct{}{}
		select {
		case <-release:
			return fakeRow(ctx, spec)
		case <-ctx.Done():
			return sim.RowResult{}, ctx.Err()
		}
	}
	hdr := map[string]string{"X-Client": "greedy"}
	done := make(chan int, 1)
	go func() {
		status, _, _ := post(t, ts.URL, "/v1/eval", evalBody(t, 1), hdr)
		done <- status
	}()
	<-started

	status, data, _ := post(t, ts.URL, "/v1/eval", evalBody(t, 2), hdr)
	if status != http.StatusTooManyRequests {
		t.Fatalf("second in-flight request = %d, want 429: %s", status, data)
	}
	// A different client is unaffected by the greedy one's cap.
	polite := make(chan int, 1)
	go func() {
		status, _, _ := post(t, ts.URL, "/v1/eval", evalBody(t, 3), map[string]string{"X-Client": "polite"})
		polite <- status
	}()
	<-started // polite's compute is admitted and running
	close(release)
	if st := <-polite; st != http.StatusOK {
		t.Fatalf("polite client's request = %d, want 200", st)
	}
	if st := <-done; st != http.StatusOK {
		t.Fatalf("greedy's first request = %d, want 200", st)
	}
	if rejects := s.Stats().Admission.ClientRejects; rejects != 1 {
		t.Fatalf("client rejects = %d, want 1", rejects)
	}
}

// TestRotatingClientHeaderCannotEscapeHostCap: X-Client is
// client-chosen, so rotating it must not buy extra concurrency — the
// per-host bucket, keyed by the remote address, still binds.
func TestRotatingClientHeaderCannotEscapeHostCap(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, MaxActive: 2, MaxQueue: 2, PerClient: 1, PerHost: 1})
	started := make(chan struct{}, 2)
	release := make(chan struct{})
	s.runRow = func(ctx context.Context, spec sim.RowSpec) (sim.RowResult, error) {
		started <- struct{}{}
		select {
		case <-release:
			return fakeRow(ctx, spec)
		case <-ctx.Done():
			return sim.RowResult{}, ctx.Err()
		}
	}
	done := make(chan int, 1)
	go func() {
		status, _, _ := post(t, ts.URL, "/v1/eval", evalBody(t, 1), map[string]string{"X-Client": "rotate-0"})
		done <- status
	}()
	<-started

	// A fresh X-Client name dodges the per-client bucket, but the host
	// bucket (same remote address) is at its cap of 1.
	status, data, _ := post(t, ts.URL, "/v1/eval", evalBody(t, 2), map[string]string{"X-Client": "rotate-1"})
	if status != http.StatusTooManyRequests {
		t.Fatalf("rotated-header request = %d, want 429: %s", status, data)
	}
	close(release)
	if st := <-done; st != http.StatusOK {
		t.Fatalf("first request = %d, want 200", st)
	}
	if rejects := s.Stats().Admission.ClientRejects; rejects != 1 {
		t.Fatalf("client rejects = %d, want 1", rejects)
	}
}

func TestDrainRefusesNewWork(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("idle drain: %v", err)
	}
	status, data, hdr := post(t, ts.URL, "/v1/eval", evalBody(t, 1), nil)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("post-drain status = %d: %s", status, data)
	}
	var eb errBody
	if err := json.Unmarshal(data, &eb); err != nil || eb.Code != "draining" {
		t.Fatalf("post-drain envelope %+v (err %v), want code draining", eb, err)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("post-drain response lacks Retry-After")
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining = %d, want 503", resp.StatusCode)
	}
	// Idempotent: a second drain returns without incident.
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("second drain: %v", err)
	}
}

// TestDrainDuringStreamFinishesCleanly starts a four-cell sweep whose
// last two cells block, drains the server mid-stream with a short
// grace, and asserts the client still received a well-formed NDJSON
// stream: the two finished rows whole and in order, then a terminator
// admitting rows=2 of=4, complete=false — never a torn row.
func TestDrainDuringStreamFinishesCleanly(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, DrainGrace: 30 * time.Millisecond})
	var mu sync.Mutex
	blockedStarted := 0
	s.runRow = func(ctx context.Context, spec sim.RowSpec) (sim.RowResult, error) {
		if spec.MV >= 480 {
			mu.Lock()
			blockedStarted++
			mu.Unlock()
			<-ctx.Done()
			return sim.RowResult{}, ctx.Err()
		}
		return fakeRow(ctx, spec)
	}

	body := `{"schemes":["8T"],"benchmarks":["basicmath"],"mvs":[400,440,480,560],"instructions":1000}`
	type streamOut struct {
		status int
		data   []byte
	}
	out := make(chan streamOut, 1)
	go func() {
		status, data, _ := post(t, ts.URL, "/v1/sweep", body, nil)
		out <- streamOut{status, data}
	}()

	// Cells 0 and 1 (400/440 mV) complete and flush before cells 2 and 3
	// can hold the two workers: the pool dispatches in index order and a
	// job's row is flushed before its worker slot frees.
	waitUntil(t, "both blocked cells computing", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return blockedStarted == 2
	})

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain did not complete: %v", err)
	}

	got := <-out
	if got.status != http.StatusOK {
		t.Fatalf("stream status = %d (headers were sent before drain): %s", got.status, got.data)
	}
	assertCleanStream(t, got.data, 4, false)
	var end sweepEnd
	lines := splitLines(got.data)
	if err := json.Unmarshal(lines[len(lines)-1], &end); err != nil {
		t.Fatal(err)
	}
	if end.Rows != 2 || end.Of != 4 {
		t.Fatalf("terminator %+v, want rows=2 of=4", end)
	}
	// An interrupted stream is never cached: the next client must not
	// replay a partial body as if it were the answer.
	if hits := s.Stats().Cache.Hits; hits != 0 {
		t.Fatalf("cache hits = %d after failed stream, want 0", hits)
	}
}

// splitLines splits NDJSON into lines (the trailing newline dropped).
func splitLines(data []byte) [][]byte {
	var lines [][]byte
	start := 0
	for i, b := range data {
		if b == '\n' {
			lines = append(lines, data[start:i])
			start = i + 1
		}
	}
	return lines
}

// TestWaiterTakesOverWhenComputerDies: two identical requests coalesce;
// the computing one's deadline kills it, the waiter must retry, become
// the computer, and succeed — a foreign cancellation is not an answer.
func TestWaiterTakesOverWhenComputerDies(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	var mu sync.Mutex
	calls := 0
	release := make(chan struct{})
	s.runRow = func(ctx context.Context, spec sim.RowSpec) (sim.RowResult, error) {
		mu.Lock()
		calls++
		first := calls == 1
		mu.Unlock()
		if first {
			<-ctx.Done() // the first computer dies of its 50ms deadline
			return sim.RowResult{}, ctx.Err()
		}
		<-release
		return fakeRow(ctx, spec)
	}
	body := evalBody(t, 7)

	first := make(chan int, 1)
	go func() {
		status, _, _ := post(t, ts.URL, "/v1/eval?deadline=50ms", body, map[string]string{"X-Client": "a"})
		first <- status
	}()
	waitUntil(t, "first computer running", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return calls == 1
	})
	second := make(chan streamResult, 1)
	go func() {
		status, data, _ := post(t, ts.URL, "/v1/eval", body, map[string]string{"X-Client": "b"})
		second <- streamResult{status, data}
	}()
	if st := <-first; st != http.StatusGatewayTimeout {
		t.Fatalf("expired computer got %d, want 504", st)
	}
	waitUntil(t, "waiter recomputing", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return calls == 2
	})
	close(release)
	got := <-second
	if got.status != http.StatusOK {
		t.Fatalf("waiter got %d: %s", got.status, got.data)
	}
	var res sim.RowResult
	if err := json.Unmarshal(got.data, &res); err != nil {
		t.Fatal(err)
	}
	if res.Samples != 1 {
		t.Fatalf("waiter's recomputed result %+v", res)
	}
}

type streamResult struct {
	status int
	data   []byte
}

// TestExpiredWhileQueued: a queued request whose deadline lapses before
// a run token frees gets 504, and its queue slot is returned.
func TestExpiredWhileQueued(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, MaxActive: 1, MaxQueue: 1, PerClient: -1})
	started := make(chan struct{}, 2)
	release := make(chan struct{})
	s.runRow = func(ctx context.Context, spec sim.RowSpec) (sim.RowResult, error) {
		started <- struct{}{}
		select {
		case <-release:
			return fakeRow(ctx, spec)
		case <-ctx.Done():
			return sim.RowResult{}, ctx.Err()
		}
	}
	blockerDone := make(chan int, 1)
	go func() {
		status, _, _ := post(t, ts.URL, "/v1/eval", evalBody(t, 1), nil)
		blockerDone <- status
	}()
	<-started

	status, data, _ := post(t, ts.URL, "/v1/eval?deadline=30ms", evalBody(t, 2), nil)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("queued-expired status = %d, want 504: %s", status, data)
	}
	waitUntil(t, "queue slot returned", func() bool { return s.adm.queued() == 0 })
	if expired := s.Stats().Admission.Expired; expired != 1 {
		t.Fatalf("expired counter = %d, want 1", expired)
	}
	close(release)
	if st := <-blockerDone; st != http.StatusOK {
		t.Fatalf("blocker finished with %d", st)
	}
}
