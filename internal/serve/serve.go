// Package serve is the simulation-as-a-service layer: a stdlib-only
// net/http server exposing the sim run surface — /v1/eval, /v1/sweep,
// /v1/chaos, /v1/hier, /v1/die — over canonical JSON spec requests,
// hardened for many concurrent clients.
//
// The robustness posture mirrors the paper's schemes, which degrade
// capacity gracefully instead of failing at low voltage: when offered
// load exceeds the worker pool the server sheds (503 + Retry-After)
// from a bounded admission queue rather than stacking goroutines,
// coalesces identical requests onto one computation, caps each client's
// concurrency, and on SIGTERM drains — finishes what it admitted,
// refuses the rest, and never truncates an NDJSON row.
//
// Determinism is the service contract: a request body is canonicalized
// (strict decode + re-encode, so key order and whitespace cannot split
// one logical spec across cache entries) and the canonical hash keys a
// sharded, bounded LRU response cache with singleflight semantics.
// Identical requests therefore return byte-identical bodies at any
// server concurrency, and a thundering herd on one grid simulates
// exactly once — observable via the per-kind compute counters on
// /v1/stats, which the verify.sh smoke tier asserts.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/dvfs"
	"repro/internal/engine"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Cache kinds. The spec kinds reuse internal/dist's job-kind names so
// one content-addressing vocabulary covers checkpoint rows and served
// responses; the sweep grid is serve's own composite.
const (
	kindEval  = sim.KindRow
	kindSweep = "serve.sweep"
	kindChaos = sim.KindChaos
	kindHier  = sim.KindHier
	kindDie   = sim.KindDie
)

// kinds lists every compute counter, in the /v1/stats emission order.
var kinds = []string{kindEval, kindSweep, kindChaos, kindHier, kindDie}

// maxBodyBytes bounds a request body; specs are small, and an unbounded
// read is an invitation to memory exhaustion.
const maxBodyBytes = 1 << 20

// Config tunes the server. The zero value of every field selects a
// sensible default, so Config{} is a working single-host server.
type Config struct {
	// Engine is the simulation engine to serve from; nil builds one
	// from Workers and RunCacheEntries.
	Engine *sim.Engine
	// Workers bounds the engine pool when Engine is nil; 0 selects
	// GOMAXPROCS.
	Workers int
	// MaxActive caps requests computing at once; 0 selects the engine's
	// worker count. (Engine jobs are still bounded by the pool — this
	// caps requests holding results buffers and response streams.)
	MaxActive int
	// MaxQueue caps requests waiting for a run token; beyond
	// MaxActive+MaxQueue the server sheds with 503 + Retry-After.
	// 0 selects 4×MaxActive.
	MaxQueue int
	// PerClient caps one client's concurrent in-flight requests (429
	// beyond it); 0 selects MaxActive+MaxQueue, negative disables.
	// Clients name themselves with the X-Client header; the name is
	// scoped to the remote host, and PerHost backstops it — a client
	// rotating names cannot buy more than its host's share.
	PerClient int
	// PerHost caps one remote host's concurrent in-flight requests
	// across all its client names (429 beyond it); 0 selects
	// MaxActive+MaxQueue, negative disables. Unlike X-Client, the
	// remote address is not client-chosen, so this cap holds against
	// non-cooperating clients.
	PerHost int
	// DefaultDeadline bounds a request that names no deadline; 0 means
	// unbounded. MaxDeadline clamps client-supplied deadlines; 0 means
	// unclamped.
	DefaultDeadline, MaxDeadline time.Duration
	// RetryAfter is the Retry-After hint on shed responses; 0 selects
	// 1s.
	RetryAfter time.Duration
	// CacheEntries / CacheBytes / CacheShards bound the response cache.
	// Zeros select 4096 entries, 64 MiB, 8 shards.
	CacheEntries int
	CacheBytes   int64
	CacheShards  int
	// RunCacheEntries bounds the engine's run memo when Engine is nil;
	// 0 selects 4096.
	RunCacheEntries int
	// MaxSweepCells caps one sweep's cell count — grid product or
	// explicit cell list — rejected with 400 before anything is
	// allocated, so a kilobyte of JSON cannot demand gigabytes of grid.
	// 0 selects 4096, negative disables the cap.
	MaxSweepCells int
	// DrainGrace is how long Drain lets admitted work finish before
	// cancelling it; 0 selects 30s, negative waits forever.
	DrainGrace time.Duration
}

// withDefaults resolves the zero values.
func (c Config) withDefaults() Config {
	if c.Engine == nil {
		if c.RunCacheEntries == 0 {
			c.RunCacheEntries = 4096
		}
		c.Engine = sim.NewEngineBounded(c.Workers, c.RunCacheEntries)
	}
	if c.MaxActive <= 0 {
		c.MaxActive = c.Engine.Workers()
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 4 * c.MaxActive
	}
	if c.PerClient == 0 {
		c.PerClient = c.MaxActive + c.MaxQueue
	}
	if c.PerHost == 0 {
		c.PerHost = c.MaxActive + c.MaxQueue
	}
	if c.MaxSweepCells == 0 {
		c.MaxSweepCells = 4096
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 4096
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = 64 << 20
	}
	if c.CacheShards <= 0 {
		c.CacheShards = 8
	}
	if c.DrainGrace == 0 {
		c.DrainGrace = 30 * time.Second
	}
	return c
}

// Server is one lvserve instance. Construct with New; the zero value
// is not usable.
type Server struct {
	cfg     Config
	eng     *sim.Engine
	adm     *admission
	clients *clientLimiter
	cache   *engine.Memo[string, []byte]
	mux     *http.ServeMux

	// computes counts cache fills per kind — the smoke tier's
	// coalesce-exactly-once evidence.
	computesMu sync.Mutex
	computes   map[string]int64 // guarded by computesMu

	// drainMu orders the drain flip against request starts, so
	// inflight.Add never races Drain's Wait.
	drainMu  sync.RWMutex
	draining bool // guarded by drainMu
	inflight sync.WaitGroup

	// hardCtx cancels admitted work when the drain grace expires.
	hardCtx    context.Context
	hardCancel context.CancelFunc

	// The run seams default to the sim engine and are substituted by
	// tests to model slow, failing or instrumented computations.
	runRow   func(context.Context, sim.RowSpec) (sim.RowResult, error)
	runChaos func(context.Context, sim.ChaosSpec) (*sim.ChaosResult, error)
	runHier  func(context.Context, sim.HierSpec) (*sim.HierResult, error)
	runDie   func(context.Context, sim.DieSpec) (*sim.DieSweep, error)
}

// New builds a server from cfg.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		eng:      cfg.Engine,
		adm:      newAdmission(cfg.MaxActive, cfg.MaxQueue),
		clients:  newClientLimiter(cfg.PerClient, cfg.PerHost),
		computes: make(map[string]int64, len(kinds)),
	}
	s.cache = engine.NewMemoConfig(engine.MemoConfig[string, []byte]{
		MaxEntries: cfg.CacheEntries,
		MaxBytes:   cfg.CacheBytes,
		Shards:     cfg.CacheShards,
		Hash: func(key string) uint64 {
			h := fnv.New64a()
			_, _ = h.Write([]byte(key)) // hash.Hash.Write never fails
			return h.Sum64()
		},
		Size: func(key string, body []byte) int64 {
			return int64(len(key) + len(body))
		},
		// Never cache failures: a shed, a drain, a timeout — all are
		// moments, not facts about the spec. Successful bodies are the
		// only deterministic artifact worth retaining.
		KeepErr: func(error) bool { return false },
	})
	s.hardCtx, s.hardCancel = context.WithCancel(context.Background())
	s.runRow = s.eng.EvalRow
	s.runChaos = s.eng.RunChaos
	s.runHier = func(ctx context.Context, spec sim.HierSpec) (*sim.HierResult, error) {
		return sim.RunHierarchy(ctx, spec)
	}
	s.runDie = func(ctx context.Context, spec sim.DieSpec) (*sim.DieSweep, error) {
		return s.eng.SweepDie(ctx, spec.Scheme, spec.Benchmark, spec.DieSeed, spec.WorkSeed, spec.Instructions, spec.CPU)
	}

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/eval", s.handleEval)
	s.mux.HandleFunc("/v1/sweep", s.handleSweep)
	s.mux.HandleFunc("/v1/chaos", s.handleChaos)
	s.mux.HandleFunc("/v1/hier", s.handleHier)
	s.mux.HandleFunc("/v1/die", s.handleDie)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	return s
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Drain begins graceful shutdown: new and queued requests are shed
// with 503 + Retry-After, admitted ones run on until the configured
// grace expires (then their contexts cancel — streams still finish
// with a clean terminator line), and Drain returns when the last
// in-flight request completes or ctx gives up waiting. Idempotent.
func (s *Server) Drain(ctx context.Context) error {
	s.drainMu.Lock()
	first := !s.draining
	s.draining = true
	s.drainMu.Unlock()
	if first {
		s.adm.drain()
		if s.cfg.DrainGrace > 0 {
			// The timer's only effect is hardCancel, which Close makes
			// idempotent; a drain that finishes early just lets it fire
			// into an already-cancelled context.
			time.AfterFunc(s.cfg.DrainGrace, s.hardCancel)
		}
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.inflight.Wait()
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close cancels all in-flight work immediately (tests; Drain is the
// graceful path).
func (s *Server) Close() { s.hardCancel() }

// isDraining reports the drain flag under its lock.
func (s *Server) isDraining() bool {
	s.drainMu.RLock()
	defer s.drainMu.RUnlock()
	return s.draining
}

// noteCompute counts one cache fill for kind.
func (s *Server) noteCompute(kind string) {
	s.computesMu.Lock()
	s.computes[kind]++
	s.computesMu.Unlock()
}

// errBody is the JSON error envelope every non-200 response carries.
type errBody struct {
	Error string `json:"error"`
	Code  string `json:"code"`
	// RetryAfterS echoes the Retry-After header on shed responses.
	RetryAfterS int64 `json:"retry_after_s,omitempty"`
}

// retryAfterSeconds rounds the configured hint up to whole seconds
// (Retry-After's unit), never below 1.
func (s *Server) retryAfterSeconds() int64 {
	secs := int64((s.cfg.RetryAfter + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// writeError emits the JSON error envelope. retryable adds Retry-After.
func (s *Server) writeError(w http.ResponseWriter, status int, code, msg string, retryable bool) {
	body := errBody{Error: msg, Code: code}
	if retryable {
		body.RetryAfterS = s.retryAfterSeconds()
		w.Header().Set("Retry-After", strconv.FormatInt(body.RetryAfterS, 10))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// The connection may already be gone; there is no one to tell.
	_ = json.NewEncoder(w).Encode(body)
}

// writeRunError maps a compute error onto the response. Shed and drain
// errors are retryable 503s, client-side deadline death is 504, and
// anything else — a failed simulation — is 500.
func (s *Server) writeRunError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrSaturated):
		s.writeError(w, http.StatusServiceUnavailable, "overloaded", err.Error(), true)
	case errors.Is(err, ErrDraining):
		s.writeError(w, http.StatusServiceUnavailable, "draining", err.Error(), true)
	case errors.Is(err, context.DeadlineExceeded):
		s.writeError(w, http.StatusGatewayTimeout, "deadline", err.Error(), false)
	case errors.Is(err, context.Canceled):
		// The client hung up; the status code is a formality.
		s.writeError(w, http.StatusServiceUnavailable, "canceled", err.Error(), true)
	default:
		s.writeError(w, http.StatusInternalServerError, "run_failed", err.Error(), false)
	}
}

// clientKeys identifies the requester for the concurrency caps: the
// remote host (not client-chosen — the cap that holds against a
// non-cooperating client) and the X-Client header when set (a
// cooperating client's name, scoped under its host so rotating names
// cannot escape the host's share).
func clientKeys(r *http.Request) (host, client string) {
	host = r.RemoteAddr
	if h, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		host = h
	}
	return host, r.Header.Get("X-Client")
}

// requestDeadline resolves the request's deadline: the "deadline"
// query parameter or X-Deadline header (a Go duration), clamped to
// MaxDeadline, defaulting to DefaultDeadline. 0 means none.
func (s *Server) requestDeadline(r *http.Request) (time.Duration, error) {
	raw := r.URL.Query().Get("deadline")
	if raw == "" {
		raw = r.Header.Get("X-Deadline")
	}
	d := s.cfg.DefaultDeadline
	if raw != "" {
		parsed, err := time.ParseDuration(raw)
		if err != nil || parsed <= 0 {
			return 0, fmt.Errorf("serve: bad deadline %q", raw)
		}
		d = parsed
	}
	if s.cfg.MaxDeadline > 0 && (d <= 0 || d > s.cfg.MaxDeadline) {
		d = s.cfg.MaxDeadline
	}
	return d, nil
}

// begin performs the per-request front door shared by every run
// endpoint: drain refusal, the per-client cap, the deadline, and the
// drain-grace hard cancel. ok=false means the response is written; on
// ok=true the caller must defer end().
func (s *Server) begin(w http.ResponseWriter, r *http.Request) (ctx context.Context, end func(), ok bool) {
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, "method", "POST required", false)
		return nil, nil, false
	}
	d, err := s.requestDeadline(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "bad_deadline", err.Error(), false)
		return nil, nil, false
	}
	host, client := clientKeys(r)
	if !s.clients.enter(host, client) {
		s.writeError(w, http.StatusTooManyRequests, "client_limited", ErrClientLimited.Error(), true)
		return nil, nil, false
	}
	// The draining check and the WaitGroup increment happen under one
	// read lock, so Drain (write lock) can never miss a request it
	// already let in.
	s.drainMu.RLock()
	if s.draining {
		s.drainMu.RUnlock()
		s.clients.leave(host, client)
		s.writeError(w, http.StatusServiceUnavailable, "draining", ErrDraining.Error(), true)
		return nil, nil, false
	}
	s.inflight.Add(1)
	s.drainMu.RUnlock()

	ctx = r.Context()
	cancel := context.CancelFunc(func() {})
	if d > 0 {
		ctx, cancel = context.WithTimeout(ctx, d)
	}
	// When the drain grace expires, cancel this request too.
	ctx, stop := contextCancelOn(ctx, s.hardCtx)
	end = func() {
		stop()
		cancel()
		s.clients.leave(host, client)
		s.inflight.Done()
	}
	return ctx, end, true
}

// contextCancelOn derives a context from base that is also cancelled
// when trigger fires. The returned stop releases the watcher.
func contextCancelOn(base, trigger context.Context) (context.Context, func()) {
	ctx, cancel := context.WithCancel(base)
	stop := context.AfterFunc(trigger, cancel)
	return ctx, func() { stop(); cancel() }
}

// compute resolves one cached, coalesced response body. fn runs under
// admission control exactly once per canonical hash; concurrent
// identical requests wait on the single computation. When the
// computing request dies of its own context, its waiters inherit a
// cancellation that is not theirs — they retry, and one of them
// becomes the new computer.
func (s *Server) compute(ctx context.Context, kind, hash string, fn func(context.Context) ([]byte, error)) ([]byte, error) {
	for {
		// computed distinguishes "our own computation failed" (its error
		// is authoritative — even when it wraps a deadline, as a per-job
		// timeout does) from "the flight we waited on was cancelled by a
		// context that was not ours" (retry: one waiter becomes the new
		// computer, the rest coalesce onto it).
		computed := false
		body, err := s.cache.Do(ctx, hash, func() ([]byte, error) {
			computed = true
			if aerr := s.adm.acquire(ctx); aerr != nil {
				return nil, aerr
			}
			defer s.adm.release() //lvlint:ignore ctxflow release only receives tokens this request already holds from buffered channels; it cannot block
			s.noteCompute(kind)
			return fn(ctx)
		})
		if err != nil && !computed && ctx.Err() == nil &&
			(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
			continue
		}
		return body, err
	}
}

// readSpec reads and canonicalizes the request body into spec,
// returning the cache key. A false return means the 400 is written.
func (s *Server) readSpec(w http.ResponseWriter, r *http.Request, kind string, spec any) (hash string, ok bool) {
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "bad_body", err.Error(), false)
		return "", false
	}
	hash, _, err = sim.CanonicalHash(kind, raw, spec)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "bad_spec", err.Error(), false)
		return "", false
	}
	return hash, true
}

// respondJSON runs a unary compute and writes its cached JSON body.
func (s *Server) respondJSON(ctx context.Context, w http.ResponseWriter, kind, hash string, fn func(context.Context) ([]byte, error)) {
	body, err := s.compute(ctx, kind, hash, fn)
	if err != nil {
		s.writeRunError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	_, _ = w.Write(body) // the client owns its half of the connection
}

// marshalBody renders a result as the canonical response body: one
// JSON document, one trailing newline.
func marshalBody(v any) ([]byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

func (s *Server) handleEval(w http.ResponseWriter, r *http.Request) {
	ctx, end, ok := s.begin(w, r)
	if !ok {
		return
	}
	defer end()
	spec := new(sim.RowSpec)
	hash, ok := s.readSpec(w, r, kindEval, spec)
	if !ok {
		return
	}
	if err := validateRow(*spec); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad_spec", err.Error(), false)
		return
	}
	s.respondJSON(ctx, w, kindEval, hash, func(ctx context.Context) ([]byte, error) {
		res, err := s.runRow(ctx, *spec)
		if err != nil {
			return nil, err
		}
		return marshalBody(res)
	})
}

func (s *Server) handleChaos(w http.ResponseWriter, r *http.Request) {
	ctx, end, ok := s.begin(w, r)
	if !ok {
		return
	}
	defer end()
	spec := new(sim.ChaosSpec)
	hash, ok := s.readSpec(w, r, kindChaos, spec)
	if !ok {
		return
	}
	if err := spec.Validate(); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad_spec", err.Error(), false)
		return
	}
	s.respondJSON(ctx, w, kindChaos, hash, func(ctx context.Context) ([]byte, error) {
		res, err := s.runChaos(ctx, *spec)
		if err != nil {
			return nil, err
		}
		return marshalBody(res)
	})
}

func (s *Server) handleHier(w http.ResponseWriter, r *http.Request) {
	ctx, end, ok := s.begin(w, r)
	if !ok {
		return
	}
	defer end()
	spec := new(sim.HierSpec)
	hash, ok := s.readSpec(w, r, kindHier, spec)
	if !ok {
		return
	}
	if err := spec.Validate(); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad_spec", err.Error(), false)
		return
	}
	s.respondJSON(ctx, w, kindHier, hash, func(ctx context.Context) ([]byte, error) {
		res, err := s.runHier(ctx, *spec)
		if err != nil {
			return nil, err
		}
		return marshalBody(res)
	})
}

func (s *Server) handleDie(w http.ResponseWriter, r *http.Request) {
	ctx, end, ok := s.begin(w, r)
	if !ok {
		return
	}
	defer end()
	spec := new(sim.DieSpec)
	hash, ok := s.readSpec(w, r, kindDie, spec)
	if !ok {
		return
	}
	if err := validateDie(*spec); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad_spec", err.Error(), false)
		return
	}
	s.respondJSON(ctx, w, kindDie, hash, func(ctx context.Context) ([]byte, error) {
		res, err := s.runDie(ctx, *spec)
		if err != nil {
			return nil, err
		}
		return marshalBody(res)
	})
}

// validateRow rejects a malformed eval cell before it costs a queue
// slot: unknown scheme or benchmark, bad operating point, empty work.
func validateRow(spec sim.RowSpec) error {
	if !knownScheme(spec.Scheme) {
		return fmt.Errorf("serve: unknown scheme %q (known: %v)", spec.Scheme, sim.AllSchemes())
	}
	if _, err := workload.ByName(spec.Benchmark); err != nil {
		return err
	}
	if _, err := dvfs.PointAt(spec.MV); err != nil {
		return err
	}
	if spec.Instructions == 0 {
		return errors.New("serve: zero instructions")
	}
	if spec.Maps <= 0 {
		return fmt.Errorf("serve: need at least one fault map, got %d", spec.Maps)
	}
	return nil
}

// validateDie rejects a malformed die sweep request.
func validateDie(spec sim.DieSpec) error {
	if !knownScheme(spec.Scheme) {
		return fmt.Errorf("serve: unknown scheme %q (known: %v)", spec.Scheme, sim.AllSchemes())
	}
	if _, err := workload.ByName(spec.Benchmark); err != nil {
		return err
	}
	if spec.Instructions == 0 {
		return errors.New("serve: zero instructions")
	}
	return nil
}

func knownScheme(s sim.Scheme) bool {
	for _, k := range sim.AllSchemes() {
		if s == k {
			return true
		}
	}
	return false
}

// Stats is the /v1/stats document. Field order is the wire order.
type Stats struct {
	Draining  bool             `json:"draining"`
	Admission AdmissionStats   `json:"admission"`
	Cache     CacheStats       `json:"cache"`
	RunMemo   RunMemoStats     `json:"run_memo"`
	Computes  map[string]int64 `json:"computes"`
}

// AdmissionStats is the admission gate's ledger.
type AdmissionStats struct {
	Running        int   `json:"running"`
	Queued         int   `json:"queued"`
	Admitted       int64 `json:"admitted"`
	Shed           int64 `json:"shed"`
	Expired        int64 `json:"expired"`
	ClientRejects  int64 `json:"client_rejects"`
	MaxActive      int   `json:"max_active"`
	MaxQueue       int   `json:"max_queue"`
	PerClientLimit int   `json:"per_client_limit"`
	PerHostLimit   int   `json:"per_host_limit"`
}

// CacheStats is the response cache's ledger.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
}

// RunMemoStats is the underlying simulation memo's ledger.
type RunMemoStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

// Stats snapshots the server's ledgers.
func (s *Server) Stats() Stats {
	hits, misses := s.eng.MemoStats()
	st := Stats{
		Draining: s.isDraining(),
		Admission: AdmissionStats{
			Running:        s.adm.running(),
			Queued:         s.adm.queued(),
			Admitted:       s.adm.admitted.Load(),
			Shed:           s.adm.shed.Load(),
			Expired:        s.adm.expired.Load(),
			ClientRejects:  s.clients.rejects.Load(),
			MaxActive:      s.cfg.MaxActive,
			MaxQueue:       s.cfg.MaxQueue,
			PerClientLimit: s.cfg.PerClient,
			PerHostLimit:   s.cfg.PerHost,
		},
		Cache: CacheStats{
			Hits:      s.cache.Hits(),
			Misses:    s.cache.Misses(),
			Evictions: s.cache.Evictions(),
			Entries:   s.cache.Len(),
			Bytes:     s.cache.SizeBytes(),
		},
		RunMemo:  RunMemoStats{Hits: hits, Misses: misses, Evictions: s.eng.MemoEvictions()},
		Computes: make(map[string]int64, len(kinds)),
	}
	s.computesMu.Lock()
	for _, k := range kinds {
		st.Computes[k] = s.computes[k]
	}
	s.computesMu.Unlock()
	return st
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, "method", "GET required", false)
		return
	}
	body, err := marshalBody(s.Stats())
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, "stats", err.Error(), false)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(body) // the client owns its half of the connection
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.isDraining() {
		s.writeError(w, http.StatusServiceUnavailable, "draining", ErrDraining.Error(), true)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = io.WriteString(w, "ok\n") // the client owns its half of the connection
}
