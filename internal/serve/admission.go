package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
)

// Admission errors, mapped to HTTP statuses by the handlers. They are
// never cached: a shed request retried a moment later may be admitted.
var (
	// ErrSaturated reports a full admission queue — the 503 +
	// Retry-After load-shedding path. The queue is bounded by design:
	// beyond MaxActive running and MaxQueue waiting requests, the
	// server refuses instantly rather than stacking goroutines until
	// memory or every client's patience runs out.
	ErrSaturated = errors.New("serve: admission queue full")
	// ErrDraining reports a server in graceful drain: it finishes what
	// it admitted and refuses the rest.
	ErrDraining = errors.New("serve: draining")
	// ErrClientLimited reports a client over its concurrency cap (429).
	ErrClientLimited = errors.New("serve: client over concurrency cap")
)

// admission is the two-stage gate in front of the worker pool: a
// request first reserves one of MaxActive+MaxQueue slots (instant
// failure when none are free — the shed path), then waits for one of
// MaxActive run tokens, honouring its deadline and the drain signal
// while queued. Compute parallelism itself is still bounded by the
// engine pool; admission bounds how much *work* is in the building,
// so queue wait — not memory growth — is the overload symptom.
type admission struct {
	slots  chan struct{} // reservations: cap = active + queued
	active chan struct{} // run tokens: cap = active

	draining chan struct{} // closed once, when drain begins

	admitted atomic.Int64 // requests that received a run token
	shed     atomic.Int64 // refused: queue full or draining
	expired  atomic.Int64 // gave up while queued (deadline/disconnect)
}

func newAdmission(active, queue int) *admission {
	return &admission{
		slots:    make(chan struct{}, active+queue),
		active:   make(chan struct{}, active),
		draining: make(chan struct{}),
	}
}

// acquire blocks until the request holds a run token, its context
// dies, or the server begins draining. A nil return means the caller
// must release(); every error return means it must not.
func (a *admission) acquire(ctx context.Context) error {
	select {
	case <-a.draining:
		a.shed.Add(1)
		return ErrDraining
	default:
	}
	select {
	case a.slots <- struct{}{}:
	default:
		a.shed.Add(1)
		return ErrSaturated
	}
	select {
	case a.active <- struct{}{}:
		a.admitted.Add(1)
		return nil
	case <-ctx.Done():
		<-a.slots
		a.expired.Add(1)
		return ctx.Err()
	case <-a.draining:
		<-a.slots
		a.shed.Add(1)
		return ErrDraining
	}
}

// release returns the run token and the reservation.
func (a *admission) release() {
	<-a.active
	<-a.slots
}

// drain flips the gate: queued requests are shed, running ones keep
// their tokens. Safe to call once (the Server's drain path guards it).
func (a *admission) drain() { close(a.draining) }

// queued reports requests holding a reservation but not yet a token.
func (a *admission) queued() int { return len(a.slots) - len(a.active) }

// running reports requests holding a run token.
func (a *admission) running() int { return len(a.active) }

// clientLimiter caps concurrent in-flight requests per requester — one
// greedy client saturating the queue starves everyone else; the cap
// keeps the shed pressure on the client generating it.
//
// Two nested buckets guard each request. The host bucket is keyed by
// the remote address, which a client cannot choose, so its cap holds
// against adversaries. The client bucket is keyed by the X-Client
// header scoped under the host — a finer, cooperative partition that
// lets well-behaved clients behind one address share fairly. A client
// rotating X-Client values escapes only the client bucket; the host
// bucket still bounds it.
type clientLimiter struct {
	clientCap, hostCap int

	mu sync.Mutex
	// inflight counts current requests per bucket key. guarded by mu
	inflight map[string]int

	rejects atomic.Int64
}

func newClientLimiter(clientCap, hostCap int) *clientLimiter {
	return &clientLimiter{clientCap: clientCap, hostCap: hostCap, inflight: make(map[string]int)}
}

// Bucket keys cannot collide across kinds: the prefix tags the kind
// and the host (which may contain anything but is shared by both
// keys) comes last.
func hostKey(host string) string           { return "h\x00" + host }
func clientKey(host, client string) string { return "c\x00" + client + "\x00" + host }

// enter admits one request for the host/client pair; the caller must
// leave the same pair exactly once on a true return and never on
// false. Both buckets are taken or neither.
func (l *clientLimiter) enter(host, client string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.hostCap > 0 && l.inflight[hostKey(host)] >= l.hostCap {
		l.rejects.Add(1)
		return false
	}
	if l.clientCap > 0 && client != "" && l.inflight[clientKey(host, client)] >= l.clientCap {
		l.rejects.Add(1)
		return false
	}
	if l.hostCap > 0 {
		l.inflight[hostKey(host)]++
	}
	if l.clientCap > 0 && client != "" {
		l.inflight[clientKey(host, client)]++
	}
	return true
}

// leave releases one request for the host/client pair, dropping each
// bucket at zero so the map never outgrows the in-flight set.
func (l *clientLimiter) leave(host, client string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	keys := make([]string, 0, 2)
	if l.hostCap > 0 {
		keys = append(keys, hostKey(host))
	}
	if l.clientCap > 0 && client != "" {
		keys = append(keys, clientKey(host, client))
	}
	for _, key := range keys {
		if n := l.inflight[key]; n <= 1 {
			delete(l.inflight, key)
		} else {
			l.inflight[key] = n - 1
		}
	}
}
