package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/sim"
)

// fakeRow is a deterministic synthetic row computation: the result is
// a pure function of the spec, so coalescing and caching are testable
// without paying for real simulations.
func fakeRow(ctx context.Context, spec sim.RowSpec) (sim.RowResult, error) {
	if err := ctx.Err(); err != nil {
		return sim.RowResult{}, err
	}
	return sim.RowResult{
		Samples:     spec.Maps,
		MeanCPI:     float64(spec.MV) / 100,
		MeanNormEPI: float64(spec.Seed) + 0.25,
	}, nil
}

// newTestServer builds a server with the synthetic row seam and an
// httptest front end. The returned server is hard-cancelled at
// cleanup so no drain timers or blocked jobs outlive the test.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	s := New(cfg)
	s.runRow = fakeRow
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		// Cancel in-flight work first: httptest's Close waits for open
		// connections, which blocked computations would hold forever.
		s.Close()
		ts.Close()
	})
	return s, ts
}

// post issues one POST and returns status, body and headers.
func post(t *testing.T, url, path, body string, header map[string]string) (int, []byte, http.Header) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+path, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range header {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data, resp.Header
}

const sweepBody = `{"schemes":["8T","Simple-wdis"],"benchmarks":["basicmath"],"mvs":[400,440],"maps":2,"seed":7,"instructions":60000}`

// Key-order and whitespace variants of sweepBody: same canonical spec.
var sweepBodyVariants = []string{
	sweepBody,
	`{"mvs":[400,440],"maps":2,"seed":7,"instructions":60000,"schemes":["8T","Simple-wdis"],"benchmarks":["basicmath"]}`,
	"{\n  \"benchmarks\": [\"basicmath\"],\n  \"schemes\": [\"8T\", \"Simple-wdis\"],\n  \"instructions\": 60000,\n  \"seed\": 7,\n  \"maps\": 2,\n  \"mvs\": [400, 440]\n}",
}

func TestSweepCoalescesToOneComputeAndIdenticalBodies(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	const clients = 3
	bodies := make([][]byte, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, body, hdr := post(t, ts.URL, "/v1/sweep", sweepBodyVariants[i%len(sweepBodyVariants)],
				map[string]string{"X-Client": fmt.Sprintf("c%d", i)})
			if status != http.StatusOK {
				t.Errorf("client %d: status %d: %s", i, status, body)
				return
			}
			if ct := hdr.Get("Content-Type"); ct != ndjsonType {
				t.Errorf("client %d: content type %q", i, ct)
			}
			bodies[i] = body
		}(i)
	}
	wg.Wait()

	for i := 1; i < clients; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("bodies differ between clients 0 and %d:\n%s\n%s", i, bodies[0], bodies[i])
		}
	}
	st := s.Stats()
	if got := st.Computes[kindSweep]; got != 1 {
		t.Fatalf("sweep computes = %d, want 1 (herd must coalesce)", got)
	}
	if st.Cache.Misses != 1 || st.Cache.Hits != clients-1 {
		t.Fatalf("cache hits/misses = %d/%d, want %d/1", st.Cache.Hits, st.Cache.Misses, clients-1)
	}
	assertCleanStream(t, bodies[0], 4, true)
}

// TestSweepByteIdenticalAcrossWorkerCounts pins the workers-1/2/N
// invariant at the HTTP layer: fresh servers at different worker
// bounds serve byte-identical bodies for the same request.
func TestSweepByteIdenticalAcrossWorkerCounts(t *testing.T) {
	var want []byte
	for _, workers := range []int{1, 2, 4} {
		_, ts := newTestServer(t, Config{Workers: workers})
		status, body, _ := post(t, ts.URL, "/v1/sweep", sweepBody, nil)
		if status != http.StatusOK {
			t.Fatalf("workers=%d: status %d: %s", workers, status, body)
		}
		if want == nil {
			want = body
		} else if !bytes.Equal(want, body) {
			t.Fatalf("workers=%d body differs:\n%s\n%s", workers, want, body)
		}
	}
}

func TestEvalCachedAndDeterministic(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	body := `{"scheme":"8T","benchmark":"basicmath","mv":400,"maps":2,"seed":3,"instructions":60000}`
	reordered := `{"instructions":60000,"seed":3,"maps":2,"mv":400,"benchmark":"basicmath","scheme":"8T"}`

	status1, b1, hdr := post(t, ts.URL, "/v1/eval", body, nil)
	if status1 != http.StatusOK {
		t.Fatalf("status %d: %s", status1, b1)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	status2, b2, _ := post(t, ts.URL, "/v1/eval", reordered, nil)
	if status2 != http.StatusOK {
		t.Fatalf("status %d: %s", status2, b2)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("key order changed the body:\n%s\n%s", b1, b2)
	}
	if got := s.Stats().Computes[kindEval]; got != 1 {
		t.Fatalf("eval computes = %d, want 1 (second request must hit)", got)
	}
	var res sim.RowResult
	if err := json.Unmarshal(b1, &res); err != nil {
		t.Fatalf("body not a RowResult: %v", err)
	}
	if res.Samples != 2 || res.MeanCPI != 4 {
		t.Fatalf("unexpected result %+v", res)
	}
}

// TestEvalRealSimulation exercises the unsubstituted engine path end
// to end once, with a deliberately tiny run.
func TestEvalRealSimulation(t *testing.T) {
	s := New(Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	body := `{"scheme":"DefectFree","benchmark":"basicmath","mv":560,"maps":1,"seed":1,"instructions":20000,"cpu":{"Width":2,"MispredictPenalty":10,"LoadExposure":0.4}}`
	status, b1, _ := post(t, ts.URL, "/v1/eval", body, nil)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, b1)
	}
	_, b2, _ := post(t, ts.URL, "/v1/eval", body, nil)
	if !bytes.Equal(b1, b2) {
		t.Fatalf("repeat request changed the body:\n%s\n%s", b1, b2)
	}
	var res sim.RowResult
	if err := json.Unmarshal(b1, &res); err != nil {
		t.Fatal(err)
	}
	if res.Samples != 1 || res.MeanCPI <= 0 {
		t.Fatalf("implausible result %+v", res)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name, path, body string
		header           map[string]string
		wantStatus       int
		wantCode         string
	}{
		{name: "unknown field", path: "/v1/eval", body: `{"scheme":"8T","typo":1}`, wantStatus: 400, wantCode: "bad_spec"},
		{name: "unknown scheme", path: "/v1/eval", body: `{"scheme":"9T","benchmark":"basicmath","mv":400,"maps":1,"instructions":1000}`, wantStatus: 400, wantCode: "bad_spec"},
		{name: "bad voltage", path: "/v1/eval", body: `{"scheme":"8T","benchmark":"basicmath","mv":123,"maps":1,"instructions":1000}`, wantStatus: 400, wantCode: "bad_spec"},
		{name: "zero instructions", path: "/v1/eval", body: `{"scheme":"8T","benchmark":"basicmath","mv":400,"maps":1}`, wantStatus: 400, wantCode: "bad_spec"},
		{name: "sweep both forms", path: "/v1/sweep", body: `{"cells":[{"scheme":"8T","benchmark":"basicmath","mv":400,"maps":1,"instructions":1000}],"schemes":["8T"]}`, wantStatus: 400, wantCode: "bad_spec"},
		{name: "sweep empty", path: "/v1/sweep", body: `{}`, wantStatus: 400, wantCode: "bad_spec"},
		{name: "bad deadline", path: "/v1/eval", body: `{}`, header: map[string]string{"X-Deadline": "soon"}, wantStatus: 400, wantCode: "bad_deadline"},
		{name: "trailing garbage", path: "/v1/eval", body: `{"scheme":"8T"} extra`, wantStatus: 400, wantCode: "bad_spec"},
		{name: "chaos invalid", path: "/v1/chaos", body: `{"Benchmark":"basicmath","StartMV":400,"Epochs":0,"EpochInstructions":1}`, wantStatus: 400, wantCode: "bad_spec"},
		{name: "hier invalid", path: "/v1/hier", body: `{"instructions":0}`, wantStatus: 400, wantCode: "bad_spec"},
		{name: "die unknown bench", path: "/v1/die", body: `{"scheme":"8T","benchmark":"nope","instructions":1000}`, wantStatus: 400, wantCode: "bad_spec"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, body, _ := post(t, ts.URL, tc.path, tc.body, tc.header)
			if status != tc.wantStatus {
				t.Fatalf("status = %d, want %d (%s)", status, tc.wantStatus, body)
			}
			var eb errBody
			if err := json.Unmarshal(body, &eb); err != nil {
				t.Fatalf("error body not JSON: %v: %s", err, body)
			}
			if eb.Code != tc.wantCode {
				t.Fatalf("code = %q, want %q (%s)", eb.Code, tc.wantCode, eb.Error)
			}
		})
	}
}

func TestMethodDiscipline(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/eval")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/eval = %d, want 405", resp.StatusCode)
	}
	status, body, _ := post(t, ts.URL, "/v1/stats", "", nil)
	if status != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/stats = %d: %s", status, body)
	}
}

func TestStatsAndHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Draining {
		t.Fatal("fresh server reports draining")
	}
	if st.Admission.MaxActive <= 0 || st.Admission.MaxQueue <= 0 {
		t.Fatalf("defaults not resolved: %+v", st.Admission)
	}
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", hresp.StatusCode)
	}
}

// assertCleanStream parses an NDJSON sweep body: every line whole
// JSON, row indices 0..rows-1 in order, terminator last with the
// given completeness.
func assertCleanStream(t *testing.T, body []byte, wantRows int, wantComplete bool) {
	t.Helper()
	sc := bufio.NewScanner(bytes.NewReader(body))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var lines []string
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(body) == 0 || body[len(body)-1] != '\n' {
		t.Fatal("stream does not end in a newline (torn last line)")
	}
	if len(lines) == 0 {
		t.Fatal("empty stream")
	}
	for i, line := range lines[:len(lines)-1] {
		var row sweepRow
		if err := json.Unmarshal([]byte(line), &row); err != nil {
			t.Fatalf("row line %d not JSON (torn row?): %v: %q", i, err, line)
		}
		if row.Index != i {
			t.Fatalf("row %d carries index %d (out of order)", i, row.Index)
		}
	}
	var end sweepEnd
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &end); err != nil {
		t.Fatalf("terminator not JSON: %v: %q", err, lines[len(lines)-1])
	}
	if !end.Done {
		t.Fatalf("terminator lacks done: %+v", end)
	}
	if end.Rows != len(lines)-1 {
		t.Fatalf("terminator rows %d, stream has %d", end.Rows, len(lines)-1)
	}
	if wantComplete {
		if !end.Complete || end.Rows != wantRows {
			t.Fatalf("stream incomplete: %+v, want %d rows", end, wantRows)
		}
	} else if end.Complete {
		t.Fatalf("interrupted stream claims completeness: %+v", end)
	}
}

// TestSweepCellCapRejectsHugeGrid: an over-cap grid must cost a 400,
// not the memory it names — the product is checked before any cell is
// allocated, so even an absurd grid (duplicate-laden axes multiplying
// to ~1e15 cells from a small body) is refused instantly.
func TestSweepCellCapRejectsHugeGrid(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxSweepCells: 4})
	cases := []struct{ name, body string }{
		{"grid over cap", `{"schemes":["8T","DefectFree"],"benchmarks":["basicmath"],"mvs":[400,440,480],"instructions":1000}`},
		{"cells over cap", `{"cells":[` + strings.Repeat(`{"scheme":"8T","benchmark":"basicmath","mv":400,"maps":1,"instructions":1000},`, 4) +
			`{"scheme":"8T","benchmark":"basicmath","mv":440,"maps":1,"instructions":1000}]}`},
		{"duplicate scheme", `{"schemes":["8T","8T"],"benchmarks":["basicmath"],"mvs":[400],"instructions":1000}`},
		{"duplicate mv", `{"schemes":["8T"],"benchmarks":["basicmath"],"mvs":[400,400],"instructions":1000}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, body, _ := post(t, ts.URL, "/v1/sweep", tc.body, nil)
			if status != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400: %s", status, body)
			}
			var eb errBody
			if err := json.Unmarshal(body, &eb); err != nil || eb.Code != "bad_spec" {
				t.Fatalf("envelope %+v (err %v), want code bad_spec", eb, err)
			}
		})
	}

	// The expansion itself must refuse a monster grid without sizing a
	// slice for it: three 100k-entry axes name 1e15 cells from ~1 MiB
	// of JSON. If this allocated first, the test would OOM, not fail.
	huge := SweepSpec{
		Schemes:      make([]sim.Scheme, 100_000),
		Benchmarks:   make([]string, 100_000),
		MVs:          make([]int, 100_000),
		Instructions: 1000,
	}
	if _, err := huge.expand(4096); err == nil {
		t.Fatal("1e15-cell grid expanded without error")
	}
	if _, err := huge.expand(-1); err == nil {
		t.Fatal("uncapped 1e15-cell grid must still fail (duplicate axis entries)")
	}
}

// errAfterWriter fails every Write after the first n succeed —
// a client whose connection dies mid-stream, as seen by a
// ResponseWriter wrapper that does not cancel the request context.
type errAfterWriter struct{ n int }

func (w *errAfterWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errors.New("client gone")
	}
	w.n--
	return len(p), nil
}

// TestClientWriteErrorStillYieldsCompleteBody: when the client's write
// fails but the run context stays live, the client detaches and the
// accumulated body — the one the cache would store and replay to every
// future identical request — must still be the complete stream.
func TestClientWriteErrorStillYieldsCompleteBody(t *testing.T) {
	s := New(Config{Workers: 2})
	s.runRow = fakeRow
	t.Cleanup(s.Close)
	spec := SweepSpec{
		Schemes: []sim.Scheme{sim.EightT}, Benchmarks: []string{"basicmath"},
		MVs: []int{400, 440, 480}, Instructions: 1000,
	}
	cells, err := spec.expand(0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := s.streamSweep(context.Background(), nil, nil, cells)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.streamSweep(context.Background(), &errAfterWriter{1}, nil, cells)
	if err != nil {
		t.Fatalf("stream with a dead client errored: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("body after client write error differs from the detached run:\n%q\n%q", got, want)
	}
	assertCleanStream(t, got, len(cells), true)
}

func TestSweepExplicitCellsStream(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := `{"cells":[
		{"scheme":"8T","benchmark":"basicmath","mv":400,"maps":1,"seed":1,"instructions":1000},
		{"scheme":"8T","benchmark":"basicmath","mv":440,"maps":1,"seed":1,"instructions":1000},
		{"scheme":"8T","benchmark":"basicmath","mv":480,"maps":1,"seed":1,"instructions":1000}
	]}`
	status, data, _ := post(t, ts.URL, "/v1/sweep", body, nil)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, data)
	}
	assertCleanStream(t, data, 3, true)
}
