// Serving-layer benchmarks, parsed by scripts/bench.sh into
// BENCH_serve.json: throughput at saturation, latency percentiles,
// shed rate and cache hit ratio. The row computation is synthetic
// (fakeRow) so the numbers measure the serving layer — admission,
// coalescing, cache, streaming — not the simulator.

package serve

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/sim"
)

// benchServer builds a server with the synthetic row seam.
func benchServer(b *testing.B, cfg Config) (*Server, *httptest.Server) {
	b.Helper()
	s := New(cfg)
	s.runRow = func(ctx context.Context, spec sim.RowSpec) (sim.RowResult, error) {
		return fakeRow(ctx, spec)
	}
	ts := httptest.NewServer(s.Handler())
	b.Cleanup(func() {
		s.Close()
		ts.Close()
	})
	return s, ts
}

func percentileUS(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return float64(sorted[i].Microseconds())
}

// BenchmarkServeSaturation drives the server past its admission bound
// with distinct specs: clients = 2×(MaxActive+MaxQueue), so a steady
// fraction of requests sheds. Reported: end-to-end req/s (shed and
// served), p50/p99 latency of served requests, and the shed rate.
func BenchmarkServeSaturation(b *testing.B) {
	s, ts := benchServer(b, Config{Workers: 4, MaxActive: 4, MaxQueue: 8, PerClient: -1, PerHost: -1})
	// A fixed per-row cost: with 24 clients against 4 run slots the
	// queue genuinely backs up, so the shed path is on the measured path.
	s.runRow = func(ctx context.Context, spec sim.RowSpec) (sim.RowResult, error) {
		select {
		case <-time.After(500 * time.Microsecond):
		case <-ctx.Done():
			return sim.RowResult{}, ctx.Err()
		}
		return fakeRow(ctx, spec)
	}
	clients := 2 * (s.cfg.MaxActive + s.cfg.MaxQueue)

	var mu sync.Mutex
	var served, shed int
	var lat []time.Duration

	var wg sync.WaitGroup
	work := make(chan int)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				body := fmt.Sprintf(`{"scheme":"8T","benchmark":"basicmath","mv":400,"maps":1,"seed":%d,"instructions":1000}`, i)
				start := time.Now()
				resp, err := http.Post(ts.URL+"/v1/eval", "application/json", strings.NewReader(body))
				d := time.Since(start)
				if err != nil {
					b.Error(err)
					return
				}
				_ = resp.Body.Close() // drained by status alone
				mu.Lock()
				switch resp.StatusCode {
				case http.StatusOK:
					served++
					lat = append(lat, d)
				case http.StatusServiceUnavailable:
					shed++
				}
				mu.Unlock()
			}
		}()
	}

	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	elapsed := time.Since(start)
	b.StopTimer()

	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	b.ReportMetric(float64(b.N)/elapsed.Seconds(), "req/s")
	b.ReportMetric(percentileUS(lat, 0.50), "p50-us")
	b.ReportMetric(percentileUS(lat, 0.99), "p99-us")
	b.ReportMetric(float64(shed)/float64(b.N), "shed-rate")
}

// BenchmarkServeCached replays one spec from many clients: after the
// first fill every request is a cache hit, measuring the replay path.
func BenchmarkServeCached(b *testing.B) {
	s, ts := benchServer(b, Config{Workers: 4, PerClient: -1, PerHost: -1})
	const body = `{"scheme":"8T","benchmark":"basicmath","mv":400,"maps":1,"seed":1,"instructions":1000}`

	b.ResetTimer()
	start := time.Now()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			resp, err := http.Post(ts.URL+"/v1/eval", "application/json", strings.NewReader(body))
			if err != nil {
				b.Error(err)
				return
			}
			_ = resp.Body.Close() // body identical every time; not re-read
			if resp.StatusCode != http.StatusOK {
				b.Errorf("status %d", resp.StatusCode)
				return
			}
		}
	})
	elapsed := time.Since(start)
	b.StopTimer()

	st := s.Stats()
	total := st.Cache.Hits + st.Cache.Misses
	if total > 0 {
		b.ReportMetric(float64(st.Cache.Hits)/float64(total), "hit-ratio")
	}
	b.ReportMetric(float64(b.N)/elapsed.Seconds(), "req/s")
}
