package inject

import (
	"math"
	"testing"
)

const testWords = 8 * 1024

func mustNew(t *testing.T, words, mv int, p Params) *Injector {
	t.Helper()
	in, err := New(words, mv, p)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestValidate(t *testing.T) {
	bad := []Params{
		{Intensity: -1},
		{Intensity: 1, TransientWeight: -0.1},
		{Intensity: 1, ClusterMean: -2},
		{Intensity: 1, WindowMean: -3},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted invalid params", p)
		}
	}
	if err := (Params{}).Validate(); err != nil {
		t.Errorf("zero Params must validate: %v", err)
	}
	if (Params{}).Enabled() {
		t.Error("zero Params must be disabled")
	}
	if !(Params{Intensity: 1}).Enabled() {
		t.Error("positive intensity must be enabled")
	}
}

func TestNewRejectsBadGeometry(t *testing.T) {
	if _, err := New(0, 400, Params{}); err == nil {
		t.Fatal("New accepted zero words")
	}
	if _, err := New(8, 400, Params{Intensity: -1}); err == nil {
		t.Fatal("New accepted invalid params")
	}
}

// TestRateVoltageDependence pins the sram-derived rate curve: monotone
// in voltage, anchored at 400 mV, and effectively zero at nominal.
func TestRateVoltageDependence(t *testing.T) {
	r400 := RatePerAccess(1, 400)
	if want := 1.0 / 1000; math.Abs(r400-want) > 1e-12 {
		t.Fatalf("rate at 400 mV = %g, want %g (anchor)", r400, want)
	}
	prev := r400
	for _, mv := range []int{440, 480, 520, 560, 760} {
		r := RatePerAccess(1, mv)
		if r >= prev {
			t.Fatalf("rate at %d mV = %g, not below rate at previous step %g", mv, r, prev)
		}
		prev = r
	}
	if r := RatePerAccess(1, 760); r > r400/1000 {
		t.Fatalf("rate at nominal = %g, want <= 1/1000 of the 400 mV rate", r)
	}
	if RatePerAccess(0, 400) != 0 {
		t.Fatal("zero intensity must give zero rate")
	}
}

// TestDeterminism: two injectors with the same seed advanced over the
// same tick sequence expose identical fault state at every step.
func TestDeterminism(t *testing.T) {
	p := Params{Seed: 42, Intensity: 30}
	a := mustNew(t, testWords, 400, p)
	b := mustNew(t, testWords, 400, p)
	for tick := uint64(1); tick <= 20000; tick++ {
		a.Advance(tick)
		b.Advance(tick)
		if a.TransientNow() != b.TransientNow() {
			t.Fatalf("tick %d: transient state diverged", tick)
		}
		if tick%64 == 0 {
			for blk := 0; blk < testWords/WordsPerBlock; blk += 97 {
				if a.BlockMask(blk) != b.BlockMask(blk) {
					t.Fatalf("tick %d: block %d mask diverged", tick, blk)
				}
			}
		}
	}
	if a.InjectedStats() != b.InjectedStats() {
		t.Fatalf("stats diverged: %+v vs %+v", a.InjectedStats(), b.InjectedStats())
	}
	if a.InjectedStats().Injected() == 0 {
		t.Fatal("campaign injected nothing at intensity 30 / 400 mV")
	}
}

// TestKindMix checks all three kinds appear under the default mix and
// that the empirical event count is in the right ballpark for the
// configured rate.
func TestKindMix(t *testing.T) {
	in := mustNew(t, testWords, 400, Params{Seed: 7, Intensity: 50})
	const ticks = 100_000
	for tick := uint64(1); tick <= ticks; tick++ {
		in.Advance(tick)
	}
	s := in.InjectedStats()
	if s.InjectedTransient == 0 || s.InjectedIntermittent == 0 || s.InjectedPermanent == 0 {
		t.Fatalf("missing kinds in %+v", s)
	}
	want := float64(ticks) * RatePerAccess(50, 400)
	got := float64(s.Injected())
	if got < want/2 || got > want*2 {
		t.Fatalf("injected %v events, want within 2x of %v", got, want)
	}
	if s.InjectedTransient < s.InjectedPermanent {
		t.Fatalf("default mix should favour transients: %+v", s)
	}
}

// TestIntermittentExpiry: intermittent faults activate, stay active
// within their window, and subside afterwards; permanents never do.
func TestIntermittentExpiry(t *testing.T) {
	// All-intermittent mix with a short window.
	in := mustNew(t, testWords, 400, Params{
		Seed: 3, Intensity: 20, IntermittentWeight: 1, WindowMean: 50,
	})
	sawActive := false
	for tick := uint64(1); tick <= 50_000; tick++ {
		in.Advance(tick)
		if in.ActiveIntermittents() > 0 {
			sawActive = true
		}
	}
	if !sawActive {
		t.Fatal("no intermittent event ever active")
	}
	// Jump far ahead: everything whose window ended inside the jump must
	// be retired. A handful of events spawned near the horizon can still
	// legitimately straddle it (rate x window ~ 1 active in steady state),
	// but none may linger past its own end tick.
	const horizon = 10_000_000
	in.Advance(horizon)
	for _, e := range in.active {
		if e.end <= horizon {
			t.Fatalf("event [%d,%d) still active at tick %d", e.start, e.end, uint64(horizon))
		}
	}
	if n := in.ActiveIntermittents(); n > 16 {
		t.Fatalf("%d intermittent events active at the horizon, want the steady-state handful", n)
	}
	if in.PermanentWords() != 0 {
		t.Fatal("permanent faults appeared in an all-intermittent mix")
	}
}

// TestPermanentAccumulation: permanent faults only grow.
func TestPermanentAccumulation(t *testing.T) {
	in := mustNew(t, testWords, 400, Params{Seed: 9, Intensity: 20, PermanentWeight: 1})
	prev := 0
	for tick := uint64(1); tick <= 30_000; tick++ {
		in.Advance(tick)
		if n := in.PermanentWords(); n < prev {
			t.Fatalf("permanent words shrank: %d -> %d", prev, n)
		} else {
			prev = n
		}
	}
	if prev == 0 {
		t.Fatal("no permanent faults accumulated")
	}
	for w := 0; w < testWords; w++ {
		if in.PermanentWord(w) && !in.FaultyWord(w) {
			t.Fatalf("word %d permanent but not faulty", w)
		}
	}
}

// TestClustering: with a large cluster mean, multi-word clusters occur —
// adjacent words fail together (the MoRS spatial-correlation shape).
func TestClustering(t *testing.T) {
	in := mustNew(t, testWords, 400, Params{Seed: 11, Intensity: 10, PermanentWeight: 1, ClusterMean: 4})
	for tick := uint64(1); tick <= 20_000; tick++ {
		in.Advance(tick)
	}
	events := in.InjectedStats().InjectedPermanent
	words := in.PermanentWords()
	if events == 0 {
		t.Fatal("no permanent events")
	}
	// Mean cluster size 1+ClusterMean = 5; overlap can only shrink the
	// observed ratio, so >2 demonstrates genuine clustering.
	if ratio := float64(words) / float64(events); ratio < 2 {
		t.Fatalf("words/event = %.2f, want > 2 (clustered)", ratio)
	}
}

// TestBlockMaskMatchesFaultyWord pins the mask/word query consistency.
func TestBlockMaskMatchesFaultyWord(t *testing.T) {
	in := mustNew(t, testWords, 400, Params{Seed: 5, Intensity: 40})
	for tick := uint64(1); tick <= 10_000; tick++ {
		in.Advance(tick)
	}
	for blk := 0; blk < testWords/WordsPerBlock; blk++ {
		mask := in.BlockMask(blk)
		for i := 0; i < WordsPerBlock; i++ {
			want := in.FaultyWord(blk*WordsPerBlock + i)
			if got := mask&(1<<uint(i)) != 0; got != want {
				t.Fatalf("block %d word %d: mask %v, FaultyWord %v", blk, i, got, want)
			}
		}
	}
}

func TestStatsArithmetic(t *testing.T) {
	a := Stats{InjectedTransient: 3, Detected: 5, CorrectedRetry: 2, CorrectedRefetch: 1, RecoveryCycles: 40}
	b := Stats{InjectedTransient: 1, Detected: 2, CorrectedRetry: 1, Uncorrected: 1, RecoveryCycles: 10}
	sum := a
	sum.Add(b)
	if sum.Detected != 7 || sum.InjectedTransient != 4 || sum.RecoveryCycles != 50 {
		t.Fatalf("Add wrong: %+v", sum)
	}
	if got := sum.Sub(a); got != b {
		t.Fatalf("Sub wrong: %+v != %+v", got, b)
	}
	if sum.Corrected() != 4 {
		t.Fatalf("Corrected = %d, want 4", sum.Corrected())
	}
	if sum.Injected() != 4 {
		t.Fatalf("Injected = %d, want 4", sum.Injected())
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{Transient: "transient", Intermittent: "intermittent", Permanent: "permanent", Kind(9): "Kind(9)"} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}
