// Package inject is the runtime fault-injection layer: a deterministic,
// seed-driven event scheduler that makes a cache's fault exposure evolve
// *during* a simulation, the way undervolted SRAM actually misbehaves in
// the field, rather than only through the static manufacturing fault map
// the paper configures FFW/BBR against.
//
// Three fault kinds are modelled, after the software fault-injection
// campaigns used to validate undervolted SRAM designs (Soyturk et al.):
//
//   - Transient: a single-access bit flip. The access that lands on the
//     event's tick reads corrupted data; a retry of the same access reads
//     clean data (the flip does not stick).
//   - Intermittent: a spatially correlated cluster of words misbehaves
//     for a bounded window of accesses (a marginal cell straddling its
//     noise margin), then recovers.
//   - Permanent: a cluster of words fails for the remainder of the run
//     (late-life wearout), permanently shrinking the usable array.
//
// Event rates are voltage-dependent, derived from the package sram Pfail
// model (see RatePerAccess): the same intensity produces orders of
// magnitude more events at 400 mV than at 560 mV, which is what gives
// the dvfs back-off controller a gradient to climb. Clusters are
// contiguous word runs with a geometric size distribution, the
// first-order shape of MoRS's spatially correlated fault maps.
//
// Determinism contract: an Injector is driven by a single access-tick
// counter owned by its cache. All randomness comes from the constructor
// seed; for a fixed (seed, voltage, parameters) the event sequence is
// identical regardless of host, worker count, or wall-clock time.
package inject

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/sram"
)

// Kind classifies one injected fault event.
type Kind int

const (
	// Transient corrupts exactly one access; a retry observes clean data.
	Transient Kind = iota
	// Intermittent makes a word cluster misbehave for a window of
	// accesses, then subside.
	Intermittent
	// Permanent makes a word cluster fail for the rest of the run.
	Permanent
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Transient:
		return "transient"
	case Intermittent:
		return "intermittent"
	case Permanent:
		return "permanent"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// WordsPerBlock mirrors the cache geometry (8 words of 4 B per 32 B
// block); BlockMask queries answer at this granularity.
const WordsPerBlock = 8

// Params is the seed-driven injection configuration. It is a flat
// comparable struct so it can ride inside a memo-keyed RunSpec. The zero
// value disables injection entirely.
type Params struct {
	// Seed derives every random choice the injector makes.
	Seed int64
	// Intensity is the expected number of fault events per 1000 accesses
	// at the 400 mV operating point; other voltages scale it down per
	// RatePerAccess. Zero disables injection.
	Intensity float64
	// TransientWeight, IntermittentWeight and PermanentWeight set the
	// event-kind mix. All three zero selects the default 0.6/0.3/0.1.
	TransientWeight, IntermittentWeight, PermanentWeight float64
	// ClusterMean is the mean number of *extra* contiguous words in an
	// intermittent/permanent cluster beyond the first (spatial
	// correlation a la MoRS). Zero selects the default 1.5.
	ClusterMean float64
	// WindowMean is the mean active window of an intermittent event in
	// accesses. Zero selects the default 200.
	WindowMean float64
}

// Enabled reports whether these parameters inject anything.
func (p Params) Enabled() bool { return p.Intensity > 0 }

// WithSeed returns a copy with the seed replaced — used to derive
// distinct per-cache injectors from one campaign-level parameter set.
func (p Params) WithSeed(seed int64) Params {
	p.Seed = seed
	return p
}

// Validate checks the parameters.
func (p Params) Validate() error {
	switch {
	case p.Intensity < 0:
		return errors.New("inject: negative intensity")
	case p.TransientWeight < 0 || p.IntermittentWeight < 0 || p.PermanentWeight < 0:
		return errors.New("inject: negative kind weight")
	case p.ClusterMean < 0:
		return errors.New("inject: negative cluster mean")
	case p.WindowMean < 0:
		return errors.New("inject: negative window mean")
	}
	return nil
}

// normalized returns the parameters with defaults filled in.
func (p Params) normalized() Params {
	if p.TransientWeight == 0 && p.IntermittentWeight == 0 && p.PermanentWeight == 0 {
		p.TransientWeight, p.IntermittentWeight, p.PermanentWeight = 0.6, 0.3, 0.1
	}
	if p.ClusterMean == 0 {
		p.ClusterMean = 1.5
	}
	if p.WindowMean == 0 {
		p.WindowMean = 200
	}
	return p
}

// RatePerAccess converts an intensity (events per 1000 accesses at
// 400 mV) into the per-access event rate at the given voltage. The
// voltage dependence is the sram model's word-failure probability
// relative to the 400 mV anchor, so the injected-event rate falls with
// rising voltage exactly as fast as the underlying cell physics: about
// 3× per 40 mV step in the paper's region of interest, four decades
// between 400 mV and the 760 mV nominal point.
func RatePerAccess(intensity float64, voltageMV int) float64 {
	if intensity <= 0 {
		return 0
	}
	m := sram.NewModel()
	scale := m.PfailWord(sram.Cell6T, float64(voltageMV)) / m.PfailWord(sram.Cell6T, 400)
	if scale > 1 {
		scale = 1
	}
	return intensity * scale / 1000
}

// Stats counts injection and detection/recovery events. The injector
// fills the Injected* fields; the cache that owns the injector fills the
// rest from its detection and recovery paths.
type Stats struct {
	// Events that became active, by kind.
	InjectedTransient, InjectedIntermittent, InjectedPermanent uint64
	// Detected counts accesses whose parity-style check observed a fault.
	Detected uint64
	// CorrectedRetry counts detections recovered by a single retry
	// (transient flips).
	CorrectedRetry uint64
	// CorrectedRefetch counts detections recovered by refetching the
	// block from the next level (intermittent/permanent faults).
	CorrectedRefetch uint64
	// Uncorrected counts detections where the line could not be repaired
	// in place (the frame was disabled; data still served from below).
	Uncorrected uint64
	// DisabledLines counts frames taken out of service.
	DisabledLines uint64
	// RecoveryCycles is the total cycle cost attributed to detection and
	// recovery (retries plus refetch latency).
	RecoveryCycles uint64
}

// Injected returns the total number of injected events.
func (s Stats) Injected() uint64 {
	return s.InjectedTransient + s.InjectedIntermittent + s.InjectedPermanent
}

// Corrected returns the total number of corrected detections.
func (s Stats) Corrected() uint64 { return s.CorrectedRetry + s.CorrectedRefetch }

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	s.InjectedTransient += o.InjectedTransient
	s.InjectedIntermittent += o.InjectedIntermittent
	s.InjectedPermanent += o.InjectedPermanent
	s.Detected += o.Detected
	s.CorrectedRetry += o.CorrectedRetry
	s.CorrectedRefetch += o.CorrectedRefetch
	s.Uncorrected += o.Uncorrected
	s.DisabledLines += o.DisabledLines
	s.RecoveryCycles += o.RecoveryCycles
}

// Sub returns s - o fieldwise (the per-epoch delta between two
// cumulative snapshots).
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		InjectedTransient:    s.InjectedTransient - o.InjectedTransient,
		InjectedIntermittent: s.InjectedIntermittent - o.InjectedIntermittent,
		InjectedPermanent:    s.InjectedPermanent - o.InjectedPermanent,
		Detected:             s.Detected - o.Detected,
		CorrectedRetry:       s.CorrectedRetry - o.CorrectedRetry,
		CorrectedRefetch:     s.CorrectedRefetch - o.CorrectedRefetch,
		Uncorrected:          s.Uncorrected - o.Uncorrected,
		DisabledLines:        s.DisabledLines - o.DisabledLines,
		RecoveryCycles:       s.RecoveryCycles - o.RecoveryCycles,
	}
}

// activeEvent is one in-flight intermittent fault.
type activeEvent struct {
	start, end uint64 // active for ticks in [start, end)
	word, size int    // contiguous cluster [word, word+size)
}

// Injector schedules fault events over one cache's access-tick timeline.
// The owning cache calls Advance once per access (with its monotonically
// increasing tick) and then queries TransientNow / FaultyWord /
// BlockMask for the access it is about to serve. Not safe for
// concurrent use; each cache owns exactly one Injector.
type Injector struct {
	rng   *rand.Rand
	words int
	rate  float64
	p     Params

	nextTick     uint64 // tick of the next undrawn event
	transientNow bool   // a transient event fired on the current tick

	active []activeEvent // in-flight intermittent events
	inter  []uint64      // bitset: words under an active intermittent fault
	perm   []uint64      // bitset: permanently failed words

	stats Stats // Injected* fields only
}

// New builds an injector over an array of the given number of words at
// the given operating voltage. Parameters must validate; a disabled
// Params yields an injector that never fires (callers normally pass nil
// instead).
func New(words, voltageMV int, p Params) (*Injector, error) {
	if words <= 0 {
		return nil, fmt.Errorf("inject: words %d must be positive", words)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	p = p.normalized()
	in := &Injector{
		rng:   rand.New(rand.NewSource(p.Seed)),
		words: words,
		rate:  RatePerAccess(p.Intensity, voltageMV),
		p:     p,
		inter: make([]uint64, (words+63)/64),
		perm:  make([]uint64, (words+63)/64),
	}
	if in.rate > 0 {
		in.nextTick = 1 + in.gap()
	}
	return in, nil
}

// gap draws the next exponential inter-arrival gap in ticks (>= 0).
func (in *Injector) gap() uint64 {
	return uint64(in.rng.ExpFloat64() / in.rate)
}

// Advance moves the injector's clock to tick: events scheduled at or
// before tick are materialized and expired intermittent windows are
// retired. The owning cache must call it exactly once per access, with
// a strictly increasing tick.
func (in *Injector) Advance(tick uint64) {
	in.transientNow = false
	for in.rate > 0 && in.nextTick <= tick {
		in.spawn(in.nextTick, tick)
		in.nextTick += 1 + in.gap()
	}
	// Expire after spawning so a large tick jump also retires events
	// whose whole window fell inside the jump.
	if len(in.active) > 0 {
		kept := in.active[:0]
		expired := false
		for _, e := range in.active {
			if e.end <= tick {
				expired = true
				continue
			}
			kept = append(kept, e)
		}
		if expired {
			in.active = kept
			in.rebuildIntermittent()
		}
	}
}

// spawn materializes one event drawn for tick at; now is the clock
// position Advance is moving to.
func (in *Injector) spawn(at, now uint64) {
	w := in.p.TransientWeight + in.p.IntermittentWeight + in.p.PermanentWeight
	u := in.rng.Float64() * w
	switch {
	case u < in.p.TransientWeight:
		in.stats.InjectedTransient++
		// A transient flip is observable only by the access on its own
		// tick; Advance is called once per access so at == now except
		// when several events share one burst.
		if at == now {
			in.transientNow = true
		}
	case u < in.p.TransientWeight+in.p.IntermittentWeight:
		in.stats.InjectedIntermittent++
		word, size := in.cluster()
		dur := 1 + uint64(in.rng.ExpFloat64()*in.p.WindowMean)
		in.active = append(in.active, activeEvent{start: at, end: at + dur, word: word, size: size})
		in.setRange(in.inter, word, size)
	default:
		in.stats.InjectedPermanent++
		word, size := in.cluster()
		in.setRange(in.perm, word, size)
	}
}

// cluster draws a spatially correlated contiguous word cluster: a
// uniform start word and a geometric run length (mean 1+ClusterMean),
// clipped to the array.
func (in *Injector) cluster() (word, size int) {
	word = in.rng.Intn(in.words)
	size = 1 + int(in.rng.ExpFloat64()*in.p.ClusterMean)
	if size > in.words-word {
		size = in.words - word
	}
	return word, size
}

func (in *Injector) setRange(set []uint64, word, size int) {
	for w := word; w < word+size; w++ {
		set[w>>6] |= 1 << (uint(w) & 63)
	}
}

// rebuildIntermittent recomputes the intermittent bitset from the
// remaining active events (clusters may overlap, so clearing a retired
// event's range directly would be wrong).
func (in *Injector) rebuildIntermittent() {
	for i := range in.inter {
		in.inter[i] = 0
	}
	for _, e := range in.active {
		in.setRange(in.inter, e.word, e.size)
	}
}

// TransientNow reports whether a transient event fired on the tick most
// recently passed to Advance: the current access reads a flipped bit,
// whatever word it touches.
func (in *Injector) TransientNow() bool { return in.transientNow }

// FaultyWord reports whether word w is currently under an injected
// intermittent or permanent fault.
func (in *Injector) FaultyWord(w int) bool {
	if w < 0 || w >= in.words {
		return false
	}
	mask := uint64(1) << (uint(w) & 63)
	return (in.inter[w>>6]|in.perm[w>>6])&mask != 0
}

// PermanentWord reports whether word w has permanently failed.
func (in *Injector) PermanentWord(w int) bool {
	if w < 0 || w >= in.words {
		return false
	}
	return in.perm[w>>6]&(1<<(uint(w)&63)) != 0
}

// BlockMask returns the 8-bit injected-fault mask (intermittent or
// permanent) of the aligned 8-word block starting at block*8 — the same
// shape as faultmap.Map.BlockMask, so a cache can OR the two to get the
// frame's effective fault pattern.
func (in *Injector) BlockMask(block int) uint8 {
	base := block * WordsPerBlock
	var mask uint8
	for i := 0; i < WordsPerBlock; i++ {
		if in.FaultyWord(base + i) {
			mask |= 1 << uint(i)
		}
	}
	return mask
}

// ActiveIntermittents returns the number of intermittent events
// currently in flight.
func (in *Injector) ActiveIntermittents() int { return len(in.active) }

// PermanentWords returns the number of permanently failed words.
func (in *Injector) PermanentWords() int {
	n := 0
	for _, w := range in.perm {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// InjectedStats returns the injector's event counters (Injected* fields
// only; detection and recovery are counted by the owning cache).
func (in *Injector) InjectedStats() Stats { return in.stats }
