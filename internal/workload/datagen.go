package workload

import (
	"math"
	"math/rand"
)

// DataBase is where the synthetic data segment starts, far from the code
// segment so instruction and data addresses never collide.
const DataBase uint64 = 1 << 30

// DataGen produces the data-access address stream of a profile as a
// mixture of two block classes, which is how Figure 3's "poor spatial
// locality and/or high word reuse" decomposes in real programs:
//
//   - streaming blocks (fraction StreamFrac): the whole 32 B block is
//     swept once per visit and rarely repeated — buffers, input streams;
//   - reused blocks: a narrow sticky window of words is re-touched many
//     times — hot structure fields, stack frames, table entries.
//
// The reused-class window width and per-visit burst are derived from the
// profile's SpatialLocality and ReuseRate targets so the *measured*
// interval metrics land on the Figure 3 bands.
type DataGen struct {
	prof Profile
	rng  *rand.Rand

	// Per-block state, lazily initialized at first touch. Streaming
	// blocks have width 8; reused blocks draw a narrow width and keep a
	// sticky window.
	width    []int8 // 0 = untouched; 8+stream marker lives in stream[]
	winStart []int8
	stream   []bool
	swept    []bool

	reusedWidth float64 // mean width of the reused class
	reusedBurst float64 // accesses per reused-class visit

	curBlock int
	left     int
	sweepPos int
}

// reusedWidthFor solves the mixture for the reused-class mean width:
// spatial = f·1 + (1-f)·wR/8.
func reusedWidthFor(prof Profile) float64 {
	f := prof.StreamFrac
	if f >= 1 {
		return 8
	}
	w := 8 * (prof.SpatialLocality - f) / (1 - f)
	if w < 1 {
		w = 1
	}
	if w > 8 {
		w = 8
	}
	return w
}

// reusedBurstFor solves the mixture for the reused-class burst length:
// reuse = 1 - E[unique]/E[total] with streams contributing 8 unique of 8.
func reusedBurstFor(prof Profile, wR float64) float64 {
	f := prof.StreamFrac
	unique := f*8 + (1-f)*wR
	if prof.ReuseRate >= 1 || f >= 1 {
		return wR
	}
	total := unique / (1 - prof.ReuseRate)
	b := (total - f*8) / (1 - f)
	if b < wR {
		b = wR
	}
	return b
}

// NewDataGen builds the generator. The profile must validate.
func NewDataGen(prof Profile, seed int64) *DataGen {
	wR := reusedWidthFor(prof)
	g := &DataGen{
		prof:        prof,
		rng:         rand.New(rand.NewSource(seed)),
		width:       make([]int8, prof.DataBlocks),
		winStart:    make([]int8, prof.DataBlocks),
		stream:      make([]bool, prof.DataBlocks),
		swept:       make([]bool, prof.DataBlocks),
		reusedWidth: wR,
		reusedBurst: reusedBurstFor(prof, wR),
	}
	g.startVisit(0)
	return g
}

// ReusedWidth returns the derived mean window width of the reused class.
func (g *DataGen) ReusedWidth() float64 { return g.reusedWidth }

// ReusedBurst returns the derived accesses per reused-class visit.
func (g *DataGen) ReusedBurst() float64 { return g.reusedBurst }

// drawWidth samples a reused block's window width around the class mean;
// widths are capped at 4 — reused hot regions are narrow (that is what
// makes them reusable), and wider per-block touch fractions come from the
// streaming class.
func (g *DataGen) drawWidth() int {
	w := int(math.Round(g.reusedWidth + g.rng.NormFloat64()*1.0))
	if w < 1 {
		w = 1
	}
	if w > 4 {
		w = 4
	}
	return w
}

func (g *DataGen) startVisit(block int) {
	g.curBlock = block
	if g.width[block] == 0 {
		// First touch: classify and fix the window.
		if g.rng.Float64() < g.prof.StreamFrac {
			g.stream[block] = true
			g.width[block] = 8
			g.winStart[block] = 0
		} else {
			w := g.drawWidth()
			g.width[block] = int8(w)
			g.winStart[block] = int8((block * 2654435761) % (9 - w))
		}
		g.sweepPos = 0
	} else if g.stream[block] {
		// Streams re-sweep on every visit (a fresh pass over the data).
		g.sweepPos = 0
	} else if !g.swept[block] {
		g.sweepPos = 0
	} else {
		g.sweepPos = int(g.width[block])
		if g.rng.Float64() < g.prof.DriftProb {
			// The likely-accessed region drifts slowly.
			s := int(g.winStart[block])
			if g.rng.Intn(2) == 0 {
				s--
			} else {
				s++
			}
			w := int(g.width[block])
			if s < 0 {
				s = 0
			}
			if s > 8-w {
				s = 8 - w
			}
			g.winStart[block] = int8(s)
		}
	}
	if g.stream[block] {
		g.left = 8
	} else {
		g.left = int(g.reusedBurst + 0.5)
	}
}

func (g *DataGen) nextBlock() int {
	if g.rng.Float64() < g.prof.SeqProb {
		return (g.curBlock + 1) % g.prof.DataBlocks
	}
	return g.rng.Intn(g.prof.DataBlocks)
}

// Next returns the next data byte address (word-aligned).
func (g *DataGen) Next() uint64 {
	if g.left == 0 {
		g.startVisit(g.nextBlock())
	}
	g.left--
	start := int(g.winStart[g.curBlock])
	w := int(g.width[g.curBlock])
	var word int
	if g.sweepPos < w {
		word = start + g.sweepPos
		g.sweepPos++
		if g.sweepPos == w {
			g.swept[g.curBlock] = true
		}
	} else {
		word = start + g.rng.Intn(w)
	}
	return DataBase + uint64(g.curBlock)*32 + uint64(word)*4
}
