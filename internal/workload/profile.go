// Package workload provides the ten benchmark workloads of the paper's
// evaluation (4 SPEC2006 + 6 MiBench, Table/Figure 3) as synthetic,
// parameterized generators.
//
// Real SPEC/MiBench traces cannot be shipped or executed here, so each
// benchmark is represented by a Profile capturing exactly the properties
// the paper's mechanisms are sensitive to: data-side spatial locality and
// word-reuse rate (Figure 3 — what FFW exploits), data working-set size
// (L1/L2 pressure), instruction-side basic-block statistics and footprint
// (what BBR exploits), and the instruction mix the timing model needs.
// The generators are deterministic for a given seed.
package workload

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
)

// Profile parameterizes one synthetic benchmark.
type Profile struct {
	Name string

	// Data side (Figure 3 calibration).

	// SpatialLocality is the target fraction of a 32 B block's words the
	// application touches during a 10k-instruction interval (the paper's
	// definition from [24]).
	SpatialLocality float64
	// ReuseRate is the target fraction of data accesses that repeat an
	// already-touched word within an interval.
	ReuseRate float64
	// DataBlocks is the data working-set size in 32 B blocks.
	DataBlocks int
	// SeqProb is the probability a block visit advances sequentially to
	// the neighbouring block (streaming) rather than jumping within the
	// working set.
	SeqProb float64
	// DriftProb is the probability a visit shifts the block's active
	// window by one word — how fast the likely-accessed region moves.
	DriftProb float64
	// StreamFrac is the fraction of data blocks accessed as streams (the
	// whole block swept once per visit); the rest are reused narrow
	// windows. The mixture realizes the SpatialLocality/ReuseRate targets
	// (see package datagen).
	StreamFrac float64

	// Instruction side.

	// CodeBlocks is the basic-block count of the benchmark's *live* code
	// footprint (the synthetic CFG keeps all blocks hot, so it stands in
	// for the hot ~10% of a real binary, not its static size).
	CodeBlocks int
	// MeanTripCount is the average loop trip count (hotter loops = small
	// live instruction footprint per interval).
	MeanTripCount float64

	// Mix and pipeline behaviour.

	// LoadFrac and StoreFrac are the instruction-mix fractions.
	LoadFrac, StoreFrac float64
	// LoadUseDepProb is the fraction of loads whose consumer issues
	// back-to-back, exposing the full L1 load-to-use latency.
	LoadUseDepProb float64
	// MispredictRate is the branch misprediction rate of the 4096-entry
	// BHT on this workload.
	MispredictRate float64
}

// profiles is the evaluation suite. Data-side numbers follow Figure 3's
// bands: mcf/hmmer/basicmath/qsort/patricia/dijkstra touch 30–60% of the
// words with >80% of accesses repeated; bzip2/crc32/adpcm touch >60% with
// >60% repeated; libquantum is the streaming exception (high spatial
// locality, low reuse). Working-set sizes reflect the applications'
// characters (mcf is the memory-hungry outlier; MiBench kernels are
// small).
var profiles = []Profile{
	{
		Name: "429.mcf", SpatialLocality: 0.35, ReuseRate: 0.85,
		DataBlocks: 1 << 16, SeqProb: 0.15, DriftProb: 0.03, StreamFrac: 0.08,
		CodeBlocks: 250, MeanTripCount: 12,
		LoadFrac: 0.30, StoreFrac: 0.09, LoadUseDepProb: 0.75, MispredictRate: 0.06,
	},
	{
		Name: "401.bzip2", SpatialLocality: 0.65, ReuseRate: 0.65,
		DataBlocks: 1 << 13, SeqProb: 0.55, DriftProb: 0.07, StreamFrac: 0.30,
		CodeBlocks: 280, MeanTripCount: 25,
		LoadFrac: 0.26, StoreFrac: 0.11, LoadUseDepProb: 0.65, MispredictRate: 0.05,
	},
	{
		Name: "456.hmmer", SpatialLocality: 0.45, ReuseRate: 0.85,
		DataBlocks: 1 << 12, SeqProb: 0.35, DriftProb: 0.04, StreamFrac: 0.15,
		CodeBlocks: 350, MeanTripCount: 40,
		LoadFrac: 0.28, StoreFrac: 0.12, LoadUseDepProb: 0.70, MispredictRate: 0.02,
	},
	{
		Name: "462.libquantum", SpatialLocality: 0.95, ReuseRate: 0.30,
		DataBlocks: 1 << 14, SeqProb: 0.90, DriftProb: 0.01, StreamFrac: 0.90,
		CodeBlocks: 150, MeanTripCount: 60,
		LoadFrac: 0.24, StoreFrac: 0.08, LoadUseDepProb: 0.55, MispredictRate: 0.01,
	},
	{
		Name: "basicmath", SpatialLocality: 0.40, ReuseRate: 0.85,
		DataBlocks: 1 << 9, SeqProb: 0.25, DriftProb: 0.04, StreamFrac: 0.10,
		CodeBlocks: 120, MeanTripCount: 30,
		LoadFrac: 0.25, StoreFrac: 0.10, LoadUseDepProb: 0.70, MispredictRate: 0.03,
	},
	{
		Name: "qsort", SpatialLocality: 0.50, ReuseRate: 0.80,
		DataBlocks: 1 << 13, SeqProb: 0.30, DriftProb: 0.03, StreamFrac: 0.12,
		CodeBlocks: 90, MeanTripCount: 15,
		LoadFrac: 0.29, StoreFrac: 0.13, LoadUseDepProb: 0.75, MispredictRate: 0.08,
	},
	{
		Name: "patricia", SpatialLocality: 0.35, ReuseRate: 0.85,
		DataBlocks: 1 << 12, SeqProb: 0.10, DriftProb: 0.03, StreamFrac: 0.05,
		CodeBlocks: 100, MeanTripCount: 10,
		LoadFrac: 0.31, StoreFrac: 0.08, LoadUseDepProb: 0.80, MispredictRate: 0.07,
	},
	{
		Name: "dijkstra", SpatialLocality: 0.45, ReuseRate: 0.85,
		DataBlocks: 1 << 12, SeqProb: 0.20, DriftProb: 0.04, StreamFrac: 0.12,
		CodeBlocks: 80, MeanTripCount: 35,
		LoadFrac: 0.27, StoreFrac: 0.09, LoadUseDepProb: 0.70, MispredictRate: 0.04,
	},
	{
		Name: "crc32", SpatialLocality: 0.70, ReuseRate: 0.70,
		DataBlocks: 1 << 12, SeqProb: 0.80, DriftProb: 0.03, StreamFrac: 0.40,
		CodeBlocks: 30, MeanTripCount: 200,
		LoadFrac: 0.30, StoreFrac: 0.05, LoadUseDepProb: 0.60, MispredictRate: 0.01,
	},
	{
		Name: "adpcm", SpatialLocality: 0.65, ReuseRate: 0.75,
		DataBlocks: 1 << 8, SeqProb: 0.70, DriftProb: 0.03, StreamFrac: 0.30,
		CodeBlocks: 40, MeanTripCount: 150,
		LoadFrac: 0.22, StoreFrac: 0.07, LoadUseDepProb: 0.60, MispredictRate: 0.02,
	},
}

// Profiles returns the full evaluation suite, in the paper's order.
func Profiles() []Profile {
	out := make([]Profile, len(profiles))
	copy(out, profiles)
	return out
}

// Names returns the benchmark names.
func Names() []string {
	out := make([]string, len(profiles))
	for i, p := range profiles {
		out[i] = p.Name
	}
	return out
}

// ByName looks a profile up by benchmark name, consulting the built-in
// suite first and then any registered custom profiles.
func ByName(name string) (Profile, error) {
	for _, p := range profiles {
		if p.Name == name {
			return p, nil
		}
	}
	customMu.RLock()
	p, ok := custom[name]
	customMu.RUnlock()
	if ok {
		return p, nil
	}
	known := Names()
	customMu.RLock()
	for n := range custom {
		known = append(known, n)
	}
	customMu.RUnlock()
	sort.Strings(known)
	return Profile{}, fmt.Errorf("workload: unknown benchmark %q (known: %v)", name, known)
}

// Validate checks a profile for internal consistency, so user-supplied
// custom profiles fail fast.
func (p Profile) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("workload: profile needs a name")
	case p.SpatialLocality <= 0 || p.SpatialLocality > 1:
		return fmt.Errorf("workload %s: spatial locality %v out of (0,1]", p.Name, p.SpatialLocality)
	case p.ReuseRate < 0 || p.ReuseRate >= 1:
		return fmt.Errorf("workload %s: reuse rate %v out of [0,1)", p.Name, p.ReuseRate)
	case p.DataBlocks < 1:
		return fmt.Errorf("workload %s: data working set %d blocks", p.Name, p.DataBlocks)
	case p.SeqProb < 0 || p.SeqProb > 1 || p.DriftProb < 0 || p.DriftProb > 1:
		return fmt.Errorf("workload %s: probabilities out of range", p.Name)
	case p.StreamFrac < 0 || p.StreamFrac >= 1:
		return fmt.Errorf("workload %s: stream fraction %v out of [0,1)", p.Name, p.StreamFrac)
	case p.SpatialLocality < p.StreamFrac:
		return fmt.Errorf("workload %s: spatial locality %v below stream fraction %v", p.Name, p.SpatialLocality, p.StreamFrac)
	case p.CodeBlocks < 2:
		return fmt.Errorf("workload %s: code blocks %d", p.Name, p.CodeBlocks)
	case p.LoadFrac < 0 || p.StoreFrac < 0 || p.LoadFrac+p.StoreFrac >= 1:
		return fmt.Errorf("workload %s: instruction mix invalid", p.Name)
	case p.LoadUseDepProb < 0 || p.LoadUseDepProb > 1:
		return fmt.Errorf("workload %s: load-use dependence %v", p.Name, p.LoadUseDepProb)
	case p.MispredictRate < 0 || p.MispredictRate > 1:
		return fmt.Errorf("workload %s: mispredict rate %v", p.Name, p.MispredictRate)
	}
	return nil
}

// Custom profiles: user-defined benchmarks can be registered at runtime
// (e.g. loaded from JSON by cmd/lvsim) and then used anywhere a built-in
// benchmark name is accepted.

var (
	customMu sync.RWMutex
	custom   = map[string]Profile{} // guarded by customMu
)

// Register makes a custom profile resolvable by name. Registering a name
// that collides with a built-in or an existing custom profile fails.
func Register(p Profile) error {
	if err := p.Validate(); err != nil {
		return err
	}
	for _, b := range profiles {
		if b.Name == p.Name {
			return fmt.Errorf("workload: %q collides with a built-in benchmark", p.Name)
		}
	}
	customMu.Lock()
	defer customMu.Unlock()
	if _, ok := custom[p.Name]; ok {
		return fmt.Errorf("workload: %q already registered", p.Name)
	}
	custom[p.Name] = p
	return nil
}

// FromJSON parses and validates a profile from JSON.
func FromJSON(data []byte) (Profile, error) {
	var p Profile
	if err := json.Unmarshal(data, &p); err != nil {
		return Profile{}, fmt.Errorf("workload: %w", err)
	}
	if err := p.Validate(); err != nil {
		return Profile{}, err
	}
	return p, nil
}
