package workload

import (
	"math"
	"regexp"
	"sort"
	"strings"
	"testing"

	"repro/internal/program"
)

func TestProfilesValidate(t *testing.T) {
	ps := Profiles()
	if len(ps) != 10 {
		t.Fatalf("suite has %d benchmarks, want 10 (4 SPEC + 6 MiBench)", len(ps))
	}
	for _, p := range ps {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestProfilesMatchFigure3Bands(t *testing.T) {
	// The paper's Figure 3 narrative: mcf, hmmer, basicmath, qsort,
	// patricia, dijkstra have 30-60% spatial locality and >80% reuse;
	// bzip2, crc32, adpcm have >60% spatial and >60% reuse; libquantum
	// is the high-spatial low-reuse exception.
	lowSpatialHighReuse := []string{"429.mcf", "456.hmmer", "basicmath", "qsort", "patricia", "dijkstra"}
	for _, name := range lowSpatialHighReuse {
		p, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if p.SpatialLocality < 0.30 || p.SpatialLocality > 0.60 {
			t.Errorf("%s spatial %v outside [0.30,0.60]", name, p.SpatialLocality)
		}
		if p.ReuseRate < 0.80 {
			t.Errorf("%s reuse %v < 0.80", name, p.ReuseRate)
		}
	}
	for _, name := range []string{"401.bzip2", "crc32", "adpcm"} {
		p, _ := ByName(name)
		if p.SpatialLocality < 0.60 {
			t.Errorf("%s spatial %v < 0.60", name, p.SpatialLocality)
		}
		if p.ReuseRate < 0.60 {
			t.Errorf("%s reuse %v < 0.60", name, p.ReuseRate)
		}
	}
	lq, _ := ByName("462.libquantum")
	if lq.SpatialLocality < 0.9 || lq.ReuseRate > 0.4 {
		t.Errorf("libquantum should be high-spatial low-reuse, got %v/%v", lq.SpatialLocality, lq.ReuseRate)
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nonesuch"); err == nil {
		t.Error("unknown benchmark must error")
	}
}

// TestByNameErrorListsCustomProfiles: the "known benchmarks" list in
// the error must include registered custom profiles, not just the
// built-in suite, and stay deterministically sorted.
func TestByNameErrorListsCustomProfiles(t *testing.T) {
	p := profiles[0]
	p.Name = "zz-custom-for-error-test"
	if err := Register(p); err != nil {
		t.Fatal(err)
	}
	defer func() {
		customMu.Lock()
		delete(custom, p.Name)
		customMu.Unlock()
	}()
	_, err := ByName("nonesuch")
	if err == nil {
		t.Fatal("unknown benchmark must error")
	}
	if !strings.Contains(err.Error(), p.Name) {
		t.Errorf("error omits the registered custom profile:\n%v", err)
	}
	names := regexp.MustCompile(`\[(.*)\]`).FindStringSubmatch(err.Error())
	if names == nil {
		t.Fatalf("error has no [known ...] list: %v", err)
	}
	list := strings.Fields(names[1])
	if !sort.StringsAreSorted(list) {
		t.Errorf("known-benchmark list is not sorted: %v", list)
	}
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	good, _ := ByName("qsort")
	cases := map[string]func(*Profile){
		"no name":      func(p *Profile) { p.Name = "" },
		"spatial zero": func(p *Profile) { p.SpatialLocality = 0 },
		"spatial big":  func(p *Profile) { p.SpatialLocality = 1.2 },
		"reuse one":    func(p *Profile) { p.ReuseRate = 1 },
		"no blocks":    func(p *Profile) { p.DataBlocks = 0 },
		"bad seq":      func(p *Profile) { p.SeqProb = -0.1 },
		"code blocks":  func(p *Profile) { p.CodeBlocks = 1 },
		"mix":          func(p *Profile) { p.LoadFrac = 0.9; p.StoreFrac = 0.2 },
		"dep":          func(p *Profile) { p.LoadUseDepProb = 2 },
		"mispredict":   func(p *Profile) { p.MispredictRate = -1 },
	}
	for name, corrupt := range cases {
		t.Run(name, func(t *testing.T) {
			p := good
			corrupt(&p)
			if err := p.Validate(); err == nil {
				t.Error("expected validation failure")
			}
		})
	}
}

func TestDataGenDeterministic(t *testing.T) {
	p, _ := ByName("basicmath")
	a, b := NewDataGen(p, 5), NewDataGen(p, 5)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("DataGen not deterministic")
		}
	}
}

func TestDataGenAddressesInWorkingSet(t *testing.T) {
	p, _ := ByName("adpcm")
	g := NewDataGen(p, 1)
	limit := DataBase + uint64(p.DataBlocks)*32
	for i := 0; i < 10000; i++ {
		addr := g.Next()
		if addr < DataBase || addr >= limit {
			t.Fatalf("address %#x outside data segment [%#x, %#x)", addr, DataBase, limit)
		}
		if addr%4 != 0 {
			t.Fatalf("address %#x not word-aligned", addr)
		}
	}
}

func TestDataGenMixtureSolvers(t *testing.T) {
	// The mixture must solve so that f·1 + (1-f)·wR/8 = spatial.
	for _, prof := range Profiles() {
		wR := reusedWidthFor(prof)
		if wR < 1 || wR > 8 {
			t.Errorf("%s: reused width %v out of range", prof.Name, wR)
		}
		implied := prof.StreamFrac + (1-prof.StreamFrac)*wR/8
		if math.Abs(implied-prof.SpatialLocality) > 0.02 {
			t.Errorf("%s: mixture implies spatial %.3f, profile %.3f", prof.Name, implied, prof.SpatialLocality)
		}
		b := reusedBurstFor(prof, wR)
		if b < wR {
			t.Errorf("%s: burst %v below width %v", prof.Name, b, wR)
		}
	}
}

func TestDataGenWidthDistribution(t *testing.T) {
	// Per-block reused widths are heterogeneous around the class mean;
	// stream blocks are full-width.
	p, _ := ByName("basicmath")
	g := NewDataGen(p, 9)
	for i := 0; i < 200000; i++ {
		g.Next()
	}
	seen := map[int]bool{}
	streams, reused := 0, 0
	for b, w := range g.width {
		if w == 0 {
			continue
		}
		if g.stream[b] {
			streams++
			if w != 8 {
				t.Fatalf("stream block %d has width %d", b, w)
			}
			continue
		}
		reused++
		if w < 1 || w > 6 {
			t.Fatalf("reused block %d width %d out of range", b, w)
		}
		seen[int(w)] = true
	}
	if reused < 100 {
		t.Fatalf("only %d reused blocks touched", reused)
	}
	if streams == 0 {
		t.Error("no stream blocks touched (StreamFrac 0.10 should yield some)")
	}
	if len(seen) < 3 {
		t.Errorf("reused widths not heterogeneous: %v", seen)
	}
}

func TestDataGenBurstStaysInOneBlock(t *testing.T) {
	p, _ := ByName("dijkstra")
	g := NewDataGen(p, 3)
	// Drain the first visit, then check each subsequent visit stays in
	// one block for its full burst.
	for g.left > 0 {
		g.Next()
	}
	for v := 0; v < 100; v++ {
		block := g.Next() / 32
		for g.left > 0 {
			if got := g.Next() / 32; got != block {
				t.Fatalf("burst access left block %d for %d", block, got)
			}
		}
	}
}

func buildStream(t *testing.T, name string, seed int64) *Stream {
	t.Helper()
	prof, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := BuildProgram(prof, seed, nil)
	if err != nil {
		t.Fatal(err)
	}
	layout := program.NewSequentialLayout(prog, 0)
	return NewStream(prof, prog, layout, seed)
}

func TestStreamInstructionMix(t *testing.T) {
	s := buildStream(t, "qsort", 1)
	counts := map[program.InstrKind]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		counts[s.Next().Kind]++
	}
	loadFrac := float64(counts[program.KindLoad]) / n
	if math.Abs(loadFrac-0.29) > 0.08 {
		t.Errorf("load fraction = %.3f, want ~0.29", loadFrac)
	}
	if counts[program.KindBranch] == 0 || counts[program.KindALU] == 0 {
		t.Error("missing instruction kinds")
	}
	if s.Instructions != n {
		t.Errorf("Instructions = %d, want %d", s.Instructions, n)
	}
}

func TestStreamPCsFollowLayout(t *testing.T) {
	s := buildStream(t, "adpcm", 2)
	prev := s.Next()
	redirects := 0
	for i := 0; i < 20000; i++ {
		cur := s.Next()
		if prev.Kind == program.KindBranch && prev.Taken {
			redirects++
		} else if cur.PC != 0 {
			// Sequential flow under the dense layout moves strictly
			// forward: PC+4 within a block, or a small forward hop over a
			// literal pool at a block boundary. PC 0 is the program
			// restart after the exit block.
			gap := int64(cur.PC) - int64(prev.PC)
			if gap < 4 || gap > 4*64 {
				t.Fatalf("PC jumped %#x -> %#x without a taken branch", prev.PC, cur.PC)
			}
		}
		prev = cur
	}
	if redirects == 0 {
		t.Error("no taken branches in 20k instructions")
	}
}

func TestStreamMemAddrOnlyOnMemOps(t *testing.T) {
	s := buildStream(t, "crc32", 3)
	for i := 0; i < 20000; i++ {
		in := s.Next()
		isMem := in.Kind == program.KindLoad || in.Kind == program.KindStore
		if isMem && in.MemAddr < DataBase {
			t.Fatalf("mem op without data address: %+v", in)
		}
		if !isMem && in.MemAddr != 0 {
			t.Fatalf("non-mem op with data address: %+v", in)
		}
	}
}

func TestStreamMispredictRate(t *testing.T) {
	s := buildStream(t, "qsort", 4) // mispredict 0.08
	mis, cond := 0, 0
	for i := 0; i < 300000; i++ {
		in := s.Next()
		if in.Kind != program.KindBranch {
			continue
		}
		if in.Mispredicted {
			mis++
		}
		cond++
	}
	// Mispredicts only occur on conditionals; rate over all branches is
	// diluted but must be positive and below the profile rate.
	if mis == 0 {
		t.Error("no mispredicts sampled")
	}
	rate := float64(mis) / float64(cond)
	if rate > 0.09 {
		t.Errorf("mispredict rate %.4f exceeds profile rate", rate)
	}
}

func TestStreamDeterministic(t *testing.T) {
	a := buildStream(t, "patricia", 7)
	b := buildStream(t, "patricia", 7)
	for i := 0; i < 10000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("streams diverged")
		}
	}
}

func TestBuildProgramTransformHook(t *testing.T) {
	prof, _ := ByName("basicmath")
	called := false
	_, err := BuildProgram(prof, 1, func(p *program.Program) (*program.Program, error) {
		called = true
		return p, nil
	})
	if err != nil || !called {
		t.Errorf("transform hook not applied: err=%v called=%v", err, called)
	}
}

func TestRegisterAndFromJSON(t *testing.T) {
	js := []byte(`{
		"Name": "custom-kernel",
		"SpatialLocality": 0.5, "ReuseRate": 0.8,
		"DataBlocks": 1024, "SeqProb": 0.3, "DriftProb": 0.05, "StreamFrac": 0.1,
		"CodeBlocks": 100, "MeanTripCount": 20,
		"LoadFrac": 0.25, "StoreFrac": 0.1,
		"LoadUseDepProb": 0.7, "MispredictRate": 0.04
	}`)
	p, err := FromJSON(js)
	if err != nil {
		t.Fatal(err)
	}
	if err := Register(p); err != nil {
		t.Fatal(err)
	}
	got, err := ByName("custom-kernel")
	if err != nil {
		t.Fatal(err)
	}
	if got.SpatialLocality != 0.5 || got.CodeBlocks != 100 {
		t.Errorf("registered profile corrupted: %+v", got)
	}
	// Duplicates and built-in collisions fail.
	if err := Register(p); err == nil {
		t.Error("duplicate registration must fail")
	}
	clash := p
	clash.Name = "qsort"
	if err := Register(clash); err == nil {
		t.Error("built-in collision must fail")
	}
	// Custom names never enter the built-in suite.
	for _, name := range Names() {
		if name == "custom-kernel" {
			t.Error("custom profile leaked into the built-in suite")
		}
	}
}

func TestFromJSONRejectsInvalid(t *testing.T) {
	if _, err := FromJSON([]byte(`{bad json`)); err == nil {
		t.Error("malformed JSON must fail")
	}
	if _, err := FromJSON([]byte(`{"Name":"x","SpatialLocality":2}`)); err == nil {
		t.Error("invalid profile must fail validation")
	}
	if _, err := FromJSON([]byte(`{}`)); err == nil {
		t.Error("empty profile must fail validation")
	}
}

func TestRegisterRejectsInvalid(t *testing.T) {
	if err := Register(Profile{Name: "bad"}); err == nil {
		t.Error("invalid profile must not register")
	}
}

func TestDataGenAccessors(t *testing.T) {
	p, _ := ByName("basicmath")
	g := NewDataGen(p, 1)
	if g.ReusedWidth() != reusedWidthFor(p) {
		t.Error("ReusedWidth accessor inconsistent")
	}
	if g.ReusedBurst() != reusedBurstFor(p, g.ReusedWidth()) {
		t.Error("ReusedBurst accessor inconsistent")
	}
}

func TestMixtureSolverEdges(t *testing.T) {
	// Fully-streaming profile: reused class degenerates gracefully.
	p := Profile{SpatialLocality: 0.99, ReuseRate: 0.1, StreamFrac: 0.99}
	w := reusedWidthFor(p)
	if w < 1 || w > 8 {
		t.Errorf("width %v out of range for near-pure stream", w)
	}
	// Width clamps at both ends.
	if w := reusedWidthFor(Profile{SpatialLocality: 0.05, StreamFrac: 0}); w != 1 {
		t.Errorf("tiny spatial should clamp width to 1, got %v", w)
	}
	if w := reusedWidthFor(Profile{SpatialLocality: 1, StreamFrac: 0}); w != 8 {
		t.Errorf("full spatial should clamp width to 8, got %v", w)
	}
	if w := reusedWidthFor(Profile{StreamFrac: 1}); w != 8 {
		t.Errorf("StreamFrac 1 should return 8, got %v", w)
	}
	// Burst floors at the width.
	if b := reusedBurstFor(Profile{ReuseRate: 0, StreamFrac: 0}, 3); b != 3 {
		t.Errorf("zero reuse should floor burst at width, got %v", b)
	}
	if b := reusedBurstFor(Profile{StreamFrac: 1}, 5); b != 5 {
		t.Errorf("pure stream burst should degenerate to width, got %v", b)
	}
}

func TestValidateStreamFracRules(t *testing.T) {
	good, _ := ByName("qsort")
	p := good
	p.StreamFrac = 1.0
	if err := p.Validate(); err == nil {
		t.Error("StreamFrac 1.0 must fail (no reused class left)")
	}
	p = good
	p.StreamFrac = 0.9 // above qsort's spatial locality 0.50
	if err := p.Validate(); err == nil {
		t.Error("StreamFrac above spatial locality must fail")
	}
}
