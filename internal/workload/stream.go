package workload

import (
	"math/rand"

	"repro/internal/program"
)

// Instr is one dynamic instruction as consumed by the timing model.
type Instr struct {
	// PC is the instruction's byte address under the active layout.
	PC uint64
	// Kind classifies the instruction.
	Kind program.InstrKind
	// MemAddr is the data address for loads and stores.
	MemAddr uint64
	// Taken reports whether a branch redirected the fetch stream (always
	// true for unconditional jumps, sampled for conditional branches).
	Taken bool
	// Mispredicted reports whether the front-end predicted this branch
	// wrong (sampled at the profile's mispredict rate).
	Mispredicted bool
	// DependsOnLoad reports whether this instruction consumes the
	// immediately preceding load's result (exposes L1 load-to-use
	// latency).
	DependsOnLoad bool
	// Overhead marks a BBR-inserted jump: it executes and costs cycles
	// but performs no useful program work, so work-based counters skip
	// it.
	Overhead bool
}

// Stream produces the merged dynamic instruction stream of a benchmark:
// control flow from the program walker, instruction addresses from the
// layout, and data addresses from the data generator. Streams are
// infinite and deterministic for a given seed.
type Stream struct {
	prof   Profile
	prog   *program.Program
	layout program.Layout
	walker *program.Walker
	data   *DataGen
	rng    *rand.Rand

	// Current block being drained.
	blk      program.BlockID
	blkTaken bool
	pos      int // next instruction word within the block
	n        int // executed words of the current block

	prevWasLoad bool
	// Instructions counts how many instructions have been produced.
	Instructions uint64
}

// NewStream builds the instruction stream for prof over the given
// (already laid out) program. Different sub-seeds decorrelate control
// flow, data addresses and sampling.
func NewStream(prof Profile, prog *program.Program, layout program.Layout, seed int64) *Stream {
	s := &Stream{
		prof:   prof,
		prog:   prog,
		layout: layout,
		walker: program.NewWalker(prog, seed),
		data:   NewDataGen(prof, seed+0x9E37),
		rng:    rand.New(rand.NewSource(seed + 0x79B9)),
	}
	s.advanceBlock()
	return s
}

func (s *Stream) advanceBlock() {
	s.blk, s.blkTaken = s.walker.Next()
	s.pos = 0
	s.n = program.ExecutedWords(&s.prog.Blocks[s.blk], s.blkTaken)
}

// Next returns the next dynamic instruction.
func (s *Stream) Next() Instr {
	for s.pos >= s.n {
		s.advanceBlock()
	}
	b := &s.prog.Blocks[s.blk]
	in := Instr{
		PC:       s.layout.BlockAddr(s.blk) + uint64(4*s.pos),
		Kind:     b.Kinds[s.pos],
		Overhead: b.TransformAdded && s.pos == b.Size-1,
	}
	last := s.pos == s.n-1
	switch in.Kind {
	case program.KindLoad, program.KindStore:
		in.MemAddr = s.data.Next()
	case program.KindBranch:
		switch {
		case b.Term == program.TermBranch && b.ExplicitFall && s.pos == b.Size-2:
			// The conditional of an explicit-fall block. When taken it is
			// also the last executed word (the appended jump is skipped);
			// when not taken it executes mid-block and does not redirect.
			in.Taken = s.blkTaken
			in.Mispredicted = s.rng.Float64() < s.prof.MispredictRate
		case last && b.Term == program.TermBranch && !b.ExplicitFall:
			in.Taken = s.blkTaken
			in.Mispredicted = s.rng.Float64() < s.prof.MispredictRate
		default:
			// Unconditional control transfers: TermJump terminators,
			// chain jumps, and appended fall jumps. The 512-entry BTB
			// captures these; they redirect but are not mispredicted.
			in.Taken = true
		}
	case program.KindALU:
		// No memory address or control flow to synthesize.
	}
	if s.prevWasLoad && in.Kind != program.KindBranch {
		in.DependsOnLoad = s.rng.Float64() < s.prof.LoadUseDepProb
	}
	s.prevWasLoad = in.Kind == program.KindLoad
	s.pos++
	s.Instructions++
	return in
}

// BuildProgram generates the benchmark's CFG and applies no layout: the
// caller links it (conventionally or with BBR) and wraps it in a Stream.
func BuildProgram(prof Profile, seed int64, transform func(*program.Program) (*program.Program, error)) (*program.Program, error) {
	cfg := program.GenConfig{
		Blocks:        prof.CodeBlocks,
		LoadFrac:      prof.LoadFrac,
		StoreFrac:     prof.StoreFrac,
		MeanTripCount: prof.MeanTripCount,
	}
	p := program.Generate(cfg, rand.New(rand.NewSource(seed)))
	if transform == nil {
		return p, nil
	}
	return transform(p)
}
