package cacti

import (
	"math"
	"testing"
)

func TestTableIIIWithinToleranceOfPaper(t *testing.T) {
	tech := Default45nm()
	model := tech.TableIII()
	paper := PaperTableIII()
	if len(model) != len(paper) {
		t.Fatalf("rows: model %d, paper %d", len(model), len(paper))
	}
	const tolArea, tolStatic = 3.0, 1.5 // percentage points
	for i := range model {
		m, p := model[i], paper[i]
		if m.Scheme != p.Scheme {
			t.Fatalf("row %d: scheme %q vs %q", i, m.Scheme, p.Scheme)
		}
		if math.Abs(m.AreaPct-p.AreaPct) > tolArea {
			t.Errorf("%s area: model %.1f%%, paper %.1f%%", m.Scheme, m.AreaPct, p.AreaPct)
		}
		if math.Abs(m.StaticPct-p.StaticPct) > tolStatic {
			t.Errorf("%s static: model %.1f%%, paper %.1f%%", m.Scheme, m.StaticPct, p.StaticPct)
		}
		if m.ExtraCycles != p.ExtraCycles {
			t.Errorf("%s latency: model %d, paper %d", m.Scheme, m.ExtraCycles, p.ExtraCycles)
		}
	}
}

func TestAreaOrderingMatchesPaper(t *testing.T) {
	// Who is big and who is small must match Table III: 8T >> IDC ≈ FBA >
	// FFW > Wilkerson ≈ wdis > BBR > baseline.
	tech := Default45nm()
	a := func(d Design) float64 { return tech.RelativeArea(d) }
	if !(a(EightT()) > a(IDC(64)) && a(IDC(64)) > a(FFWData()) &&
		a(FBA(64)) > a(FFWData()) && a(FFWData()) > a(BBRInstr()) &&
		a(BBRInstr()) > 1.0) {
		t.Errorf("area ordering broken: 8T=%.3f IDC=%.3f FBA=%.3f FFW=%.3f BBR=%.3f",
			a(EightT()), a(IDC(64)), a(FBA(64)), a(FFWData()), a(BBRInstr()))
	}
}

func TestHeadlineOverheads(t *testing.T) {
	// The abstract's claims: ~5.2% data-cache and ~1.1% instruction-cache
	// area overhead; both with zero latency overhead.
	tech := Default45nm()
	ffw := 100 * (tech.RelativeArea(FFWData()) - 1)
	bbr := 100 * (tech.RelativeArea(BBRInstr()) - 1)
	if ffw < 3.5 || ffw > 8 {
		t.Errorf("FFW area overhead = %.1f%%, paper 5.2%%", ffw)
	}
	if bbr < 0.5 || bbr > 3 {
		t.Errorf("BBR area overhead = %.1f%%, paper 1.1%%", bbr)
	}
	if FFWData().ExtraCycles != 0 || BBRInstr().ExtraCycles != 0 {
		t.Error("FFW/BBR must declare zero latency overhead")
	}
}

func Test8TLeakageNearBaseline(t *testing.T) {
	// Table III: 8T static power is 100.2% — the extra leakage path is
	// almost cancelled by the stack effect.
	tech := Default45nm()
	got := 100 * tech.RelativeLeakage(EightT())
	if math.Abs(got-100.2) > 0.05 {
		t.Errorf("8T leakage = %.2f%%, want 100.2%%", got)
	}
}

func TestFig9PatternPathShorterThanDataArray(t *testing.T) {
	// Figure 9's conclusion: the stored/fault pattern paths finish before
	// the data array's row-to-column-MUX point, so FFW adds no cycles.
	tech := Default45nm()
	paths := tech.Fig9Timeline()
	var data, pattern, tag float64
	for _, p := range paths {
		switch p.Name {
		case "data array (row addr to column MUX)":
			data = p.FO4
		case "stored pattern + MUX1/MUX2 + remap":
			pattern = p.FO4
		case "tag array + compare":
			tag = p.FO4
		}
	}
	if data == 0 || pattern == 0 || tag == 0 {
		t.Fatalf("missing paths: %+v", paths)
	}
	if pattern >= data {
		t.Errorf("pattern path %.1f FO4 must be shorter than data array %.1f FO4", pattern, data)
	}
	if tag >= data {
		t.Errorf("tag path %.1f FO4 must be shorter than data array %.1f FO4", tag, data)
	}
}

func TestFig9CalibrationNumbers(t *testing.T) {
	// The model is calibrated to the paper's 42.2 FO4 data-array path and
	// 39.4 FO4 pattern path.
	tech := Default45nm()
	paths := tech.Fig9Timeline()
	if got := paths[0].FO4; math.Abs(got-42.2) > 0.5 {
		t.Errorf("data array path = %.2f FO4, want ~42.2", got)
	}
	if got := paths[1].FO4; math.Abs(got-39.4) > 0.5 {
		t.Errorf("pattern path = %.2f FO4, want ~39.4", got)
	}
}

func TestPathFO4Monotone(t *testing.T) {
	tech := Default45nm()
	if tech.PathFO4(1024, 1) >= tech.PathFO4(8192, 1) {
		t.Error("bigger arrays must be slower")
	}
	if tech.PathFO4(dataBits, 1) >= tech.PathFO4(dataBits, 1.3) {
		t.Error("larger cell area must stretch the wire term")
	}
}

func TestFBAEntriesScaleArea(t *testing.T) {
	tech := Default45nm()
	if tech.RelativeArea(FBA(64)) >= tech.RelativeArea(FBA(1024)) {
		t.Error("more FBA entries must cost more area")
	}
	// 1024-entry FBA+ is substantially bigger than the realistic 64.
	if tech.RelativeArea(FBA(1024)) < tech.RelativeArea(FBA(64))+0.2 {
		t.Error("FBA+ should carry a large area premium (paper ignores it in energy as a favor)")
	}
}

func TestCellAccessors(t *testing.T) {
	tech := Default45nm()
	if tech.cellArea(Kind8T) <= tech.cellArea(Kind6T) {
		t.Error("8T cell must be larger than 6T")
	}
	if tech.cellLeak(KindCAM) <= tech.cellLeak(Kind8T) {
		t.Error("CAM cell must leak more")
	}
}
