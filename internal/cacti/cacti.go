// Package cacti is a small analytic cache area/latency/leakage model in
// the spirit of CACTI 6.5 [32], standing in for the authors' modified
// CACTI runs. It computes, for each fault-tolerance scheme's cache
// design, the normalized area, normalized static power and access-path
// timing that Table III and Figure 9 report.
//
// The model counts cells and calibrated per-structure overheads rather
// than extracting RC netlists: large arrays get a periphery factor, side
// structures that extend the tag array (FMAP, StoredPattern) are costed
// at cell area only, CAM-based structures (FBA, IDC) carry a calibrated
// per-entry overhead for comparators and match logic. The calibration
// targets are Table III itself; the model reproduces every row within
// ~2.5 percentage points, and EXPERIMENTS.md tabulates model-vs-paper.
//
// Latency overheads (the "+1 cycle" column) are design declarations taken
// from the paper's argument (e.g. the 8T cache is *granted* one extra
// cycle on the assumption that its 28% area growth stretches wire-
// dominated paths); the FO4 path model (Figure 9) verifies the zero-
// overhead claims structurally: the FFW pattern path and the BBR way-mux
// path are shorter than the data array's row-to-column-MUX path.
package cacti

import "math"

// Tech bundles the 45 nm technology constants.
type Tech struct {
	// Cell areas in µm² (45 nm; the 8T cell is ~30% larger [34], a CAM
	// cell roughly twice a 6T).
	Cell6TUm2, Cell8TUm2, CellCAMUm2 float64
	// PeripheryFactor multiplies main-array cell area for decoders, sense
	// amplifiers and wiring.
	PeripheryFactor float64
	// CAMEntryOverheadUm2 is per-entry match/priority logic for fully- or
	// highly-associative word buffers.
	CAMEntryOverheadUm2 float64
	// Leakage per bit, relative to a 6T cell. The 8T cell adds one
	// leakage path partly offset by the stack effect: +0.2% [34]. CAM
	// cells leak roughly double.
	Leak6T, Leak8T, LeakCAM float64
	// FO4 path model coefficients: path = K0 + K1·log2(bits) +
	// K2·sqrt(bits·areaScale), calibrated to Figure 9's 42.2 FO4 data
	// array and 39.4 FO4 pattern path.
	K0, K1, K2 float64
	// MuxFO4 is one 4:1 multiplexer stage; CompareFO4 a tag comparator.
	MuxFO4, CompareFO4 float64
}

// Default45nm returns the calibrated 45 nm constants.
func Default45nm() Tech {
	return Tech{
		Cell6TUm2: 0.346, Cell8TUm2: 0.450, CellCAMUm2: 0.692,
		PeripheryFactor:     1.60,
		CAMEntryOverheadUm2: 180,
		Leak6T:              1.0, Leak8T: 1.002, LeakCAM: 2.2,
		K0: 20.8, K1: 1.0, K2: 0.00664,
		MuxFO4: 2.5, CompareFO4: 4.0,
	}
}

// CellKind selects the storage cell of a structure.
type CellKind int

const (
	// Kind6T is the conventional high-density cell (data arrays).
	Kind6T CellKind = iota
	// Kind8T is the robust read-decoupled cell (tags, side structures).
	Kind8T
	// KindCAM is a content-addressable cell (FBA tags).
	KindCAM
)

func (t Tech) cellArea(k CellKind) float64 {
	switch k {
	case Kind8T:
		return t.Cell8TUm2
	case KindCAM:
		return t.CellCAMUm2
	default:
		return t.Cell6TUm2
	}
}

func (t Tech) cellLeak(k CellKind) float64 {
	switch k {
	case Kind8T:
		return t.Leak8T
	case KindCAM:
		return t.LeakCAM
	default:
		return t.Leak6T
	}
}

// Structure is one auxiliary array attached to a cache design.
type Structure struct {
	Name string
	Bits int
	Cell CellKind
	// CAMEntries adds per-entry match-logic overhead (0 for plain SRAM).
	CAMEntries int
	// SharesPeriphery marks tag-array extensions (FMAP, StoredPattern)
	// that reuse existing decoders: they cost cell area only.
	SharesPeriphery bool
}

// Design is a complete L1 cache organization under one scheme.
type Design struct {
	Name string
	// Main arrays.
	DataBits int
	DataCell CellKind
	TagBits  int
	TagCell  CellKind
	// Side structures.
	Extras []Structure
	// MuxAreaFrac is distributed multiplexer overhead as a fraction of
	// base cache area (BBR's way-select muxes).
	MuxAreaFrac float64
	// ExtraCycles is the declared hit-latency overhead (Table III).
	ExtraCycles int
}

// Paper geometry: 32 KB data, 1024 frames, 20 tag/state bits per frame.
const (
	dataBits = 32 * 1024 * 8
	tagBits  = 1024 * 20
)

// Baseline is the conventional 6T cache every Table III column is
// normalized to (6T data and tags, no extras).
func Baseline() Design {
	return Design{Name: "6T baseline", DataBits: dataBits, DataCell: Kind6T, TagBits: tagBits, TagCell: Kind6T}
}

// EightT is the all-8T cache: reliable at 400 mV, ~28-30% area, +1 cycle.
func EightT() Design {
	return Design{Name: "8T cache", DataBits: dataBits, DataCell: Kind8T, TagBits: tagBits, TagCell: Kind8T, ExtraCycles: 1}
}

// FFWData is the fault-free-window data cache: 6T data, 8T tags extended
// with the FMAP and StoredPattern arrays (8 bits each per frame).
func FFWData() Design {
	return Design{
		Name: "FFW (dcache)", DataBits: dataBits, DataCell: Kind6T, TagBits: tagBits, TagCell: Kind8T,
		Extras: []Structure{
			{Name: "FMAP", Bits: 1024 * 8, Cell: Kind8T, SharesPeriphery: true},
			{Name: "StoredPattern", Bits: 1024 * 8, Cell: Kind8T, SharesPeriphery: true},
		},
	}
}

// BBRInstr is the basic-block-relocation instruction cache: 6T data, 8T
// tags, way-select multiplexers for the direct-mapped mode.
func BBRInstr() Design {
	return Design{
		Name: "BBR (icache)", DataBits: dataBits, DataCell: Kind6T, TagBits: tagBits, TagCell: Kind8T,
		MuxAreaFrac: 0.001,
	}
}

// SimpleWdis is simple word disable: 8T tags plus the FMAP.
func SimpleWdis() Design {
	return Design{
		Name: "Simple wdis", DataBits: dataBits, DataCell: Kind6T, TagBits: tagBits, TagCell: Kind8T,
		Extras: []Structure{{Name: "FMAP", Bits: 1024 * 8, Cell: Kind8T, SharesPeriphery: true}},
	}
}

// Wilkerson is word-disable with line pairing: per-logical-line slot
// masks and physical-frame select bits, plus the word-combining
// multiplexers; +1 cycle.
func Wilkerson() Design {
	return Design{
		Name: "Wilkerson", DataBits: dataBits, DataCell: Kind6T, TagBits: tagBits, TagCell: Kind8T,
		Extras: []Structure{
			// 8 defect bits + 8 frame-select bits per logical line.
			{Name: "slot masks", Bits: 512 * 16, Cell: Kind8T, SharesPeriphery: true},
		},
		MuxAreaFrac: 0.012,
		ExtraCycles: 1,
	}
}

// FBA is the fault buffer array with the given entry count: word-disable
// FMAP plus a fully-associative word buffer (CAM tags + 8T data); +1
// cycle for the CAM lookup.
func FBA(entries int) Design {
	return Design{
		Name: "FBA", DataBits: dataBits, DataCell: Kind6T, TagBits: tagBits, TagCell: Kind8T,
		Extras: []Structure{
			{Name: "FMAP", Bits: 1024 * 8, Cell: Kind8T, SharesPeriphery: true},
			{Name: "buffer data", Bits: entries * 32, Cell: Kind8T},
			{Name: "buffer tags", Bits: entries * 30, Cell: KindCAM, CAMEntries: entries},
		},
		ExtraCycles: 1,
	}
}

// IDC is the inquisitive defect cache with the given entry count: a
// set-associative auxiliary cache; +1 cycle.
func IDC(entries int) Design {
	return Design{
		Name: "IDC", DataBits: dataBits, DataCell: Kind6T, TagBits: tagBits, TagCell: Kind8T,
		Extras: []Structure{
			{Name: "FMAP", Bits: 1024 * 8, Cell: Kind8T, SharesPeriphery: true},
			{Name: "aux data", Bits: entries * 32, Cell: Kind8T},
			// Tag storage plus the per-way parallel comparators, costed
			// as match-logic-heavy cells.
			{Name: "aux tags", Bits: entries * 28, Cell: KindCAM, CAMEntries: entries},
		},
		ExtraCycles: 1,
	}
}

// SECDED is the per-word (39,32) ECC design from the related-work class:
// 7 check bits per 32-bit word in the data array plus the encoder/decoder
// logic; +1 cycle for the correction stage. Not part of the paper's
// Table III — provided for the extension experiments that measure the
// paper's "multi-bit errors overwhelm ECC" claim.
func SECDED() Design {
	return Design{
		Name: "SECDED", DataBits: dataBits, DataCell: Kind6T, TagBits: tagBits, TagCell: Kind8T,
		Extras: []Structure{
			{Name: "check bits", Bits: dataBits * 7 / 32, Cell: Kind6T},
		},
		MuxAreaFrac: 0.01, // encoder/decoder trees
		ExtraCycles: 1,
	}
}

// BitFix is Wilkerson's second scheme [4] at word granularity: no new
// storage (a quarter of the existing data array is repurposed for repair
// patterns), just fix-up multiplexers and per-frame repair tags. Capacity
// falls to 75%; +1 cycle. Extension baseline.
func BitFix() Design {
	return Design{
		Name: "Bit-fix", DataBits: dataBits, DataCell: Kind6T, TagBits: tagBits, TagCell: Kind8T,
		Extras: []Structure{
			// Repair position tags: ~2 entries x (3 position + 1 valid)
			// bits per data frame.
			{Name: "repair tags", Bits: 768 * 8, Cell: Kind8T, SharesPeriphery: true},
		},
		MuxAreaFrac: 0.015,
		ExtraCycles: 1,
	}
}

// AreaUm2 returns the design's total area under the technology model.
func (t Tech) AreaUm2(d Design) float64 {
	base := (float64(d.DataBits)*t.cellArea(d.DataCell) + float64(d.TagBits)*t.cellArea(d.TagCell)) * t.PeripheryFactor
	area := base
	for _, s := range d.Extras {
		a := float64(s.Bits) * t.cellArea(s.Cell)
		if !s.SharesPeriphery {
			a *= 1.0 // standalone small arrays still dominated by the explicit CAM overhead below
		}
		a += float64(s.CAMEntries) * t.CAMEntryOverheadUm2
		area += a
	}
	area += d.MuxAreaFrac * base
	return area
}

// RelativeArea returns the design's area normalized to the conventional
// 6T baseline (Table III's first column).
func (t Tech) RelativeArea(d Design) float64 {
	return t.AreaUm2(d) / t.AreaUm2(Baseline())
}

// muxLeakFactor scales distributed multiplexer leakage relative to the
// same area of SRAM (logic leaks less per area than dense cell arrays).
const muxLeakFactor = 0.7

// RelativeLeakage returns the design's static power normalized to the 6T
// baseline (Table III's second column). Leakage scales with bit count and
// cell type; CAM match logic is attributed to its cells, distributed
// multiplexers to their area share.
func (t Tech) RelativeLeakage(d Design) float64 {
	leak := func(d Design) float64 {
		l := float64(d.DataBits)*t.cellLeak(d.DataCell) + float64(d.TagBits)*t.cellLeak(d.TagCell)
		for _, s := range d.Extras {
			l += float64(s.Bits) * t.cellLeak(s.Cell)
		}
		base := float64(dataBits + tagBits)
		l += d.MuxAreaFrac * base * muxLeakFactor
		return l
	}
	return leak(d) / leak(Baseline())
}

// PathFO4 returns the critical-path delay of an array of the given size,
// with areaScale stretching the wire-dominated term (8T arrays are ~1.3×
// the area, wires ~√1.3 longer).
func (t Tech) PathFO4(bits int, areaScale float64) float64 {
	b := float64(bits)
	return t.K0 + t.K1*math.Log2(b) + t.K2*math.Sqrt(b*areaScale)
}

// Fig9Path is one bar of Figure 9's timeline.
type Fig9Path struct {
	Name string
	FO4  float64
}

// Fig9Timeline reproduces Figure 9: the parallel critical paths of the
// FFW data cache. The stored/fault pattern path (array + MUX1 + MUX2 and
// the remap logic) must finish before the data array's row-to-column-MUX
// point, which is why FFW adds no latency.
func (t Tech) Fig9Timeline() []Fig9Path {
	dataArray := t.PathFO4(dataBits, 1)
	pattern := t.PathFO4(1024*8, 1) + 2*t.MuxFO4
	tag := t.PathFO4(tagBits, 1) + t.CompareFO4
	return []Fig9Path{
		{Name: "data array (row addr to column MUX)", FO4: dataArray},
		{Name: "stored pattern + MUX1/MUX2 + remap", FO4: pattern},
		{Name: "fault pattern (FMAP) + MUX3 + remap", FO4: pattern},
		{Name: "tag array + compare", FO4: tag},
	}
}

// TableIIIRow is one scheme's static-overhead row.
type TableIIIRow struct {
	Scheme      string
	AreaPct     float64 // normalized area, percent
	StaticPct   float64 // normalized static power, percent
	ExtraCycles int
}

// TableIII computes the model's version of the paper's Table III.
func (t Tech) TableIII() []TableIIIRow {
	designs := []Design{EightT(), FFWData(), BBRInstr(), FBA(64), Wilkerson(), IDC(64), SimpleWdis()}
	rows := make([]TableIIIRow, len(designs))
	for i, d := range designs {
		rows[i] = TableIIIRow{
			Scheme:      d.Name,
			AreaPct:     100 * t.RelativeArea(d),
			StaticPct:   100 * t.RelativeLeakage(d),
			ExtraCycles: d.ExtraCycles,
		}
	}
	return rows
}

// PaperTableIII returns the paper's Table III verbatim, for side-by-side
// comparison in reports and tests.
func PaperTableIII() []TableIIIRow {
	return []TableIIIRow{
		{Scheme: "8T cache", AreaPct: 128.0, StaticPct: 100.2, ExtraCycles: 1},
		{Scheme: "FFW (dcache)", AreaPct: 105.2, StaticPct: 106.4, ExtraCycles: 0},
		{Scheme: "BBR (icache)", AreaPct: 101.1, StaticPct: 100.1, ExtraCycles: 0},
		{Scheme: "FBA", AreaPct: 112.0, StaticPct: 106.1, ExtraCycles: 1},
		{Scheme: "Wilkerson", AreaPct: 103.4, StaticPct: 104.5, ExtraCycles: 1},
		{Scheme: "IDC", AreaPct: 113.7, StaticPct: 105.9, ExtraCycles: 1},
		{Scheme: "Simple wdis", AreaPct: 103.3, StaticPct: 103.6, ExtraCycles: 0},
	}
}
