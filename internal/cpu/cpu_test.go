package cpu

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/faultmap"
	"repro/internal/program"
	"repro/internal/schemes"
	"repro/internal/workload"
)

func testStream(t *testing.T, name string, seed int64) *workload.Stream {
	t.Helper()
	prof, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := workload.BuildProgram(prof, seed, nil)
	if err != nil {
		t.Fatal(err)
	}
	return workload.NewStream(prof, prog, program.NewSequentialLayout(prog, 0), seed)
}

func defectFreePair(next *core.NextLevel) (core.InstrCache, core.DataCache) {
	return schemes.NewDefectFree(next), schemes.NewDefectFree(next)
}

func TestRunValidation(t *testing.T) {
	n := core.NewNextLevel(100)
	ic, dc := defectFreePair(n)
	s := testStream(t, "adpcm", 1)
	if _, err := Run(Config{Width: 0}, s, ic, dc, n, 10); err == nil {
		t.Error("zero width must error")
	}
	if _, err := Run(DefaultConfig(), s, ic, dc, n, 0); err == nil {
		t.Error("zero instructions must error")
	}
}

func TestRunCounts(t *testing.T) {
	n := core.NewNextLevel(100)
	ic, dc := defectFreePair(n)
	s := testStream(t, "basicmath", 2)
	r, err := Run(DefaultConfig(), s, ic, dc, n, 50000)
	if err != nil {
		t.Fatal(err)
	}
	if r.Instructions != 50000 {
		t.Errorf("Instructions = %d", r.Instructions)
	}
	if r.Loads == 0 || r.Stores == 0 || r.Branches == 0 {
		t.Errorf("missing event counts: %+v", r)
	}
	if r.TakenBranches == 0 || r.TakenBranches > r.Branches {
		t.Errorf("TakenBranches = %d of %d", r.TakenBranches, r.Branches)
	}
	if r.Cycles() <= 0 {
		t.Error("no cycles accumulated")
	}
}

func TestBaselineCPIPlausible(t *testing.T) {
	// The defect-free 2-way core should land near CPI 1 on the embedded
	// workloads (gem5's arm-detailed would give 0.8-1.3 on MiBench).
	n := core.NewNextLevel(97) // 760 mV memory latency
	ic, dc := defectFreePair(n)
	s := testStream(t, "basicmath", 3)
	r, _ := Run(DefaultConfig(), s, ic, dc, n, 300000)
	if cpi := r.CPI(); cpi < 0.6 || cpi > 1.8 {
		t.Errorf("baseline CPI = %.3f, want in [0.6, 1.8]", cpi)
	}
}

func TestExtraL1LatencyCostsSubstantially(t *testing.T) {
	// The paper's central latency claim: +1 cycle on both L1s costs tens
	// of percent (Fig. 10 shows >40% at 560 mV for the +1-cycle schemes).
	run := func(extra bool) Result {
		n := core.NewNextLevel(41) // 560 mV-ish memory latency
		var ic core.InstrCache
		var dc core.DataCache
		if extra {
			ic, dc = schemes.New8T(n), schemes.New8T(n)
		} else {
			ic, dc = defectFreePair(n)
		}
		s := testStream(t, "basicmath", 4)
		r, _ := Run(DefaultConfig(), s, ic, dc, n, 300000)
		return r
	}
	base := run(false)
	slow := run(true)
	ratio := slow.Cycles() / base.Cycles()
	if ratio < 1.3 {
		t.Errorf("+1 cycle L1 ratio = %.3f, want >= 1.3 (paper: >1.4)", ratio)
	}
	if ratio > 1.8 {
		t.Errorf("+1 cycle L1 ratio = %.3f implausibly high", ratio)
	}
	// The increase must come from the L1 component.
	if slow.L1Cycles <= base.L1Cycles {
		t.Error("L1 component did not grow with L1 latency")
	}
}

func TestDefectsIncreaseMemoryComponent(t *testing.T) {
	mk := func(pfail float64) Result {
		n := core.NewNextLevel(29) // 400 mV memory latency
		var fmI, fmD *faultmap.Map
		if pfail > 0 {
			fmI = faultmapGen(8192, pfail, 5)
			fmD = faultmapGen(8192, pfail, 6)
		} else {
			fmI, fmD = faultmap.New(8192), faultmap.New(8192)
		}
		ic, err := schemes.NewSimpleWdis(fmI, n)
		if err != nil {
			t.Fatal(err)
		}
		dc, err := schemes.NewSimpleWdis(fmD, n)
		if err != nil {
			t.Fatal(err)
		}
		s := testStream(t, "basicmath", 7)
		r, _ := Run(DefaultConfig(), s, ic, dc, n, 200000)
		return r
	}
	clean := mk(0)
	dirty := mk(1e-2)
	if dirty.MemCycles <= clean.MemCycles*2 {
		t.Errorf("defects at 1e-2 should blow up memory stalls: clean=%.0f dirty=%.0f",
			clean.MemCycles, dirty.MemCycles)
	}
	if dirty.L2Reads <= clean.L2Reads*2 {
		t.Errorf("defects should multiply L2 traffic: clean=%d dirty=%d", clean.L2Reads, dirty.L2Reads)
	}
}

func TestL2PerKiloInstr(t *testing.T) {
	r := Result{Instructions: 2000, L2Reads: 50}
	if got := r.L2PerKiloInstr(); got != 25 {
		t.Errorf("L2PerKiloInstr = %v, want 25", got)
	}
	if (Result{}).L2PerKiloInstr() != 0 {
		t.Error("idle L2PerKiloInstr should be 0")
	}
}

func TestRuntimeSeconds(t *testing.T) {
	r := Result{BaseCycles: 1e6}
	if got, want := r.RuntimeSeconds(1000), 1e-3; math.Abs(got-want) > 1e-12 {
		t.Errorf("RuntimeSeconds = %v, want %v", got, want)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() Result {
		n := core.NewNextLevel(100)
		ic, dc := defectFreePair(n)
		s := testStream(t, "crc32", 11)
		r, _ := Run(DefaultConfig(), s, ic, dc, n, 50000)
		return r
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("runs differ:\n%+v\n%+v", a, b)
	}
}

func TestCPIZeroInstructions(t *testing.T) {
	if (Result{}).CPI() != 0 {
		t.Error("CPI of empty result should be 0")
	}
}

func faultmapGen(words int, pfail float64, seed int64) *faultmap.Map {
	return faultmap.Generate(words, pfail, randSource(seed))
}

func randSource(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestHandComputedCycleAccounting(t *testing.T) {
	// A fully deterministic micro-program pins the timing semantics: one
	// 4-instruction straight-line block (ALU, load, ALU, store) looping
	// via an unconditional jump back to itself... TermExit restarts at the
	// entry, giving the same effect without a branch redirect charge
	// except through the exit jump path. Use a single exit block.
	prof := workload.Profile{
		Name: "anchor", SpatialLocality: 0.5, ReuseRate: 0.5,
		DataBlocks: 4, SeqProb: 1, DriftProb: 0, StreamFrac: 0,
		CodeBlocks: 2, MeanTripCount: 1,
		LoadFrac: 0.25, StoreFrac: 0.25,
		LoadUseDepProb: 0, MispredictRate: 0,
	}
	prog := &program.Program{Blocks: []program.BasicBlock{
		{Size: 4, Term: program.TermExit,
			Kinds: []program.InstrKind{program.KindALU, program.KindLoad, program.KindALU, program.KindStore}},
	}}
	if err := prog.Validate(); err != nil {
		t.Fatal(err)
	}
	next := core.NewNextLevel(50)
	ic, dc := defectFreePair(next)
	s := workload.NewStream(prof, prog, program.NewSequentialLayout(prog, 0), 1)
	const n = 4000 // 1000 block iterations
	r, err := Run(DefaultConfig(), s, ic, dc, next, n)
	if err != nil {
		t.Fatal(err)
	}
	// Expected cycles:
	//   issue: 4000 * 0.5                        = 2000
	//   no taken branches, no mispredicts, no load-use deps -> L1Cycles 0
	//   memory: cold misses only. Fetches touch 1 block (4 instrs in one
	//   32B block): 1 L1I miss -> L2 miss -> 10+50 beyond L1 latency...
	//   MissOutcome latency = l1Lat(2) + l2(10) + mem(50) = 62; charged
	//   beyond hit latency: 60. Data: the generator touches a few blocks;
	//   each cold load miss costs 60 or 10 (L2-resident after the write
	//   buffer drains? loads allocate in L2) — bounded below by 1 miss.
	if got := r.BaseCycles; got != 2000 {
		t.Errorf("BaseCycles = %v, want 2000", got)
	}
	if r.L1Cycles != 0 {
		t.Errorf("L1Cycles = %v, want 0 (no deps, no redirects, no mispredicts)", r.L1Cycles)
	}
	if r.Loads != 1000 || r.Stores != 1000 || r.Branches != 0 {
		t.Errorf("counts: loads=%d stores=%d branches=%d", r.Loads, r.Stores, r.Branches)
	}
	// Memory component: one I-side cold L2+mem miss (60) plus a handful
	// of D-side cold misses; strictly positive and far below issue.
	if r.MemCycles < 60 || r.MemCycles > 1000 {
		t.Errorf("MemCycles = %v, want small positive (cold misses only)", r.MemCycles)
	}
	if r.Executed != n {
		t.Errorf("Executed = %d, want %d", r.Executed, n)
	}
}

func TestLoadUseChargedExactly(t *testing.T) {
	// With LoadUseDepProb 1 every non-branch instruction after a load
	// stalls hitLatency-1 = 1 cycle at the 2-cycle baseline.
	prof := workload.Profile{
		Name: "dep-anchor", SpatialLocality: 0.5, ReuseRate: 0.5,
		DataBlocks: 1, SeqProb: 1, DriftProb: 0, StreamFrac: 0,
		CodeBlocks: 2, MeanTripCount: 1,
		LoadFrac: 1, StoreFrac: 0,
		LoadUseDepProb: 1, MispredictRate: 0,
	}
	prog := &program.Program{Blocks: []program.BasicBlock{
		{Size: 2, Term: program.TermExit, Kinds: []program.InstrKind{program.KindLoad, program.KindLoad}},
	}}
	next := core.NewNextLevel(50)
	ic, dc := defectFreePair(next)
	s := workload.NewStream(prof, prog, program.NewSequentialLayout(prog, 0), 2)
	const n = 1000
	r, err := Run(DefaultConfig(), s, ic, dc, next, n)
	if err != nil {
		t.Fatal(err)
	}
	// Every instruction except the very first follows a load: 999 charged
	// load-use bubbles of 1 cycle each.
	if got, want := r.L1Cycles, float64(n-1); got != want {
		t.Errorf("L1Cycles = %v, want %v (one bubble per dependent consumer)", got, want)
	}
}
