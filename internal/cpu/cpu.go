// Package cpu is the trace-driven timing model of the paper's embedded
// core (Table I: 2-way superscalar, ARM Cortex-A9 class, modelled in gem5
// arm-detailed by the authors).
//
// The model is deliberately first-order: the paper's conclusions rest on
// (i) the L1 hit latency sitting in the fetch-redirect and load-to-use
// loops, and (ii) the defect-induced extra L2 accesses. Both are modelled
// directly and the constants are calibrated to the paper's anchor points
// (a +1-cycle L1 costs ~40% at 560 mV; Simple-wdis costs ~6%). Runtime
// decomposes into the paper's three components (after [35]): base issue
// cycles, L1-latency cycles, and L2/memory stall cycles.
//
// Timing rules:
//
//   - Issue: 1/Width cycles per instruction.
//   - Taken control transfer: the BTB and next-line predictor hide the
//     design-point fetch latency, so a predicted-taken branch is free at
//     the 2-cycle baseline; L1I latency beyond the design point cannot be
//     hidden and bubbles the front end (L1 component). A mispredicted
//     conditional pays the branch-resolution penalty (base component)
//     plus a refill through the L1I (L1 component).
//   - Instruction fetch miss: the cycles beyond the L1I hit latency stall
//     the front end (memory component).
//   - Load miss: blocking; the cycles beyond the L1D hit latency stall
//     the core (memory component).
//   - Load-to-use: a consumer issuing back-to-back with its producer load
//     stalls for hitLatency-1 cycles (L1 component) — one cycle is hidden
//     by forwarding.
//   - Stores retire through the write buffer: no stall.
package cpu

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/program"
	"repro/internal/workload"
)

// Config fixes the core parameters (Table I).
type Config struct {
	// Width is the superscalar issue width.
	Width int
	// MispredictPenalty is the branch-resolution penalty in cycles.
	MispredictPenalty int
	// LoadExposure is the fraction of each load's hit latency beyond the
	// 2-cycle pipeline design point that stalls issue even without an
	// explicit dependence — the shallow window of a 2-way embedded core
	// hides very little of an unexpected extra cycle. Calibrated so a
	// +1-cycle L1 costs around 40% runtime at 560 mV (the paper's
	// Figure 10 anchor).
	LoadExposure float64
}

// DefaultConfig is the paper's 2-way core. The 10-cycle resolution
// penalty approximates the Cortex-A9-class pipeline depth.
func DefaultConfig() Config {
	return Config{Width: 2, MispredictPenalty: 10, LoadExposure: 0.9}
}

// designHitLatency is the L1 latency the pipeline is designed around
// (Table I: 2 cycles); latency beyond it is exposed per LoadExposure.
const designHitLatency = 2

// Result aggregates one simulation run.
type Result struct {
	// Instructions counts *useful* (work) instructions — the unit every
	// cross-scheme metric is normalized by. BBR-inserted jumps execute
	// and cost cycles but are excluded here.
	Instructions uint64
	// Executed counts all executed instructions, including BBR overhead
	// jumps; Executed >= Instructions, equal for every non-BBR scheme.
	Executed uint64

	// Cycle components; Cycles() is their sum.
	BaseCycles     float64 // issue bandwidth + branch resolution
	L1Cycles       float64 // L1 hit latency exposure (redirects, load-to-use)
	MemCycles      float64 // L2 and memory stalls
	RecoveryCycles float64 // fault detection/recovery stalls (runtime injection)

	// Event counts.
	Loads, Stores, Branches, TakenBranches, Mispredicts uint64
	FetchMisses, LoadMisses                             uint64
	L2Reads, MemReads                                   uint64 // demand traffic below L1
}

// Cycles returns total cycles.
func (r Result) Cycles() float64 {
	return r.BaseCycles + r.L1Cycles + r.MemCycles + r.RecoveryCycles
}

// CPI returns cycles per executed instruction (microarchitectural
// diagnostic; cross-scheme comparisons should use Cycles() directly,
// which is per fixed useful work).
func (r Result) CPI() float64 {
	if r.Executed == 0 {
		return 0
	}
	return r.Cycles() / float64(r.Executed)
}

// RuntimeSeconds converts cycles to wall-clock time at freqMHz.
func (r Result) RuntimeSeconds(freqMHz float64) float64 {
	return r.Cycles() / (freqMHz * 1e6)
}

// L2PerKiloInstr returns demand L2 reads per 1000 instructions — the
// metric of Figure 11.
func (r Result) L2PerKiloInstr() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return 1000 * float64(r.L2Reads) / float64(r.Instructions)
}

// Run executes the stream until n useful instructions have retired (for
// BBR-transformed programs, inserted jumps execute on top of those).
// Both caches must share the NextLevel so L2 contents interleave
// realistically; next is read for traffic deltas only.
func Run(cfg Config, s *workload.Stream, ic core.InstrCache, dc core.DataCache, next *core.NextLevel, n uint64) (Result, error) {
	return RunContext(context.Background(), cfg, s, ic, dc, next, n)
}

// RunContext is Run with cooperative cancellation: the context is
// polled every few thousand instructions, and a cancelled or expired
// context aborts the run with the context's error (and the partial
// Result accumulated so far). Used by campaign drivers to enforce
// per-job timeouts.
func RunContext(ctx context.Context, cfg Config, s *workload.Stream, ic core.InstrCache, dc core.DataCache, next *core.NextLevel, n uint64) (Result, error) {
	return RunClocked(ctx, cfg, s, ic, dc, next, n, nil)
}

// Clock observes the run's cycle count as it advances. The event-driven
// hierarchy (package hier) uses it to place the core's memory requests
// on the simulated timeline; the trace-driven path passes nil and pays
// nothing but a branch per instruction.
type Clock interface {
	// Advance reports the core's total cycle count so far, once per
	// instruction just before it issues. Monotonically non-decreasing.
	Advance(cycles float64)
}

// RunClocked is RunContext with an optional per-instruction clock hook
// (nil for none). Identical timing and statistics either way: the hook
// observes the run, it does not perturb it.
func RunClocked(ctx context.Context, cfg Config, s *workload.Stream, ic core.InstrCache, dc core.DataCache, next *core.NextLevel, n uint64, clk Clock) (Result, error) {
	if cfg.Width < 1 {
		return Result{}, fmt.Errorf("cpu: width %d", cfg.Width)
	}
	if n == 0 {
		return Result{}, fmt.Errorf("cpu: zero instructions requested")
	}
	var r Result
	issue := 1 / float64(cfg.Width)
	l2Before, memBefore := next.DemandReads(), next.MemReads()

	// Transform overhead is bounded (≤1 jump per block visit), so the
	// executed total is capped defensively at 2n plus slack.
	for limit := 2*n + 1024; r.Instructions < n && r.Executed < limit; {
		if r.Executed&0xfff == 0 {
			if err := ctx.Err(); err != nil {
				return r, err
			}
		}
		if clk != nil {
			clk.Advance(r.Cycles())
		}
		in := s.Next()
		r.Executed++
		if !in.Overhead {
			r.Instructions++
		}
		r.BaseCycles += issue

		// Front end: fetch the instruction.
		fo := ic.Fetch(in.PC)
		if !fo.Hit {
			r.FetchMisses++
			r.MemCycles += float64(fo.Latency - ic.HitLatency())
		} else if extra := fo.Latency - ic.HitLatency(); extra > 0 {
			// A hit slower than the hit latency is a detected-fault
			// retry/recovery stall injected by the fault layer.
			r.RecoveryCycles += float64(extra)
		}

		switch in.Kind {
		case program.KindLoad:
			r.Loads++
			do := dc.Read(in.MemAddr)
			if !do.Hit {
				r.LoadMisses++
				r.MemCycles += float64(do.Latency - dc.HitLatency())
			} else if extra := do.Latency - dc.HitLatency(); extra > 0 {
				r.RecoveryCycles += float64(extra)
			}
			if extra := dc.HitLatency() - designHitLatency; extra > 0 {
				r.L1Cycles += float64(extra) * cfg.LoadExposure
			}
		case program.KindStore:
			r.Stores++
			dc.Write(in.MemAddr)
		case program.KindBranch:
			r.Branches++
			if in.Taken {
				r.TakenBranches++
				// Predicted redirects hide the design-point fetch
				// latency; extra L1I latency bubbles the front end.
				if extra := ic.HitLatency() - designHitLatency; extra > 0 {
					r.L1Cycles += float64(extra)
				}
			}
			if in.Mispredicted {
				r.Mispredicts++
				r.BaseCycles += float64(cfg.MispredictPenalty)
				// The recovery refill goes through the L1I.
				r.L1Cycles += float64(ic.HitLatency())
			}
		case program.KindALU:
			// Register-to-register work is covered by the base CPI.
		}

		if in.DependsOnLoad {
			// Back-to-back consumer: expose hit latency minus the
			// forwarded cycle.
			r.L1Cycles += float64(dc.HitLatency() - 1)
		}
	}
	r.L2Reads = next.DemandReads() - l2Before
	r.MemReads = next.MemReads() - memBefore
	return r, nil
}
