package faultmap

import (
	"math"
	"math/rand"
)

// Multi-bit defect statistics, used by ECC-based protection schemes
// (Section III-B's related-work class): a per-word SECDED code corrects
// one hard-failed bit per 32-bit word, so a word is *uncorrectable* only
// when two or more of its bits fail.

// MultiBitFailProb returns the probability that a 32-bit word has two or
// more failing bits at the given per-bit failure probability — the
// residual defect rate seen by a SECDED-protected array.
func MultiBitFailProb(pfailBit float64) float64 {
	if pfailBit <= 0 {
		return 0
	}
	if pfailBit >= 1 {
		return 1
	}
	// 1 - P(0 failures) - P(exactly 1 failure).
	p0 := math.Pow(1-pfailBit, 32)
	p1 := 32 * pfailBit * math.Pow(1-pfailBit, 31)
	p := 1 - p0 - p1
	if p < 0 {
		return 0
	}
	return p
}

// SingleBitFailProb returns the probability that a 32-bit word has
// exactly one failing bit — the fraction of words a SECDED code is
// continuously correcting.
func SingleBitFailProb(pfailBit float64) float64 {
	if pfailBit <= 0 || pfailBit >= 1 {
		return 0
	}
	return 32 * pfailBit * math.Pow(1-pfailBit, 31)
}

// GenerateSECDED draws the fault map seen through a per-word SECDED code:
// a word is marked defective only when it has at least two failing bits
// (single-bit defects are corrected in-line by the decoder). The check
// bits themselves are assumed protected by the same code (their failures
// fold into the 39-bit codeword; for simplicity the 32-bit data-failure
// statistics are used — a slight favor to ECC, consistent with how the
// paper favors its other baselines).
func GenerateSECDED(words int, pfailBit float64, rng *rand.Rand) *Map {
	m := New(words)
	p := MultiBitFailProb(pfailBit)
	for w := 0; w < words; w++ {
		if rng.Float64() < p {
			m.SetDefective(w, true)
		}
	}
	return m
}
