package faultmap

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewIsFaultFree(t *testing.T) {
	m := New(100)
	if m.Words() != 100 {
		t.Fatalf("Words = %d", m.Words())
	}
	if m.CountDefective() != 0 {
		t.Errorf("new map has %d defects", m.CountDefective())
	}
	if m.FaultFreeWords() != 100 {
		t.Errorf("FaultFreeWords = %d", m.FaultFreeWords())
	}
}

func TestNewPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) should panic")
		}
	}()
	New(0)
}

func TestSetAndQuery(t *testing.T) {
	m := New(130) // crosses a uint64 boundary
	for _, w := range []int{0, 63, 64, 129} {
		m.SetDefective(w, true)
		if !m.Defective(w) {
			t.Errorf("word %d should be defective", w)
		}
	}
	if m.CountDefective() != 4 {
		t.Errorf("CountDefective = %d, want 4", m.CountDefective())
	}
	m.SetDefective(64, false)
	if m.Defective(64) {
		t.Error("word 64 should be fault-free after clear")
	}
	if m.CountDefective() != 3 {
		t.Errorf("CountDefective = %d, want 3", m.CountDefective())
	}
}

func TestOutOfRangeFailsSafe(t *testing.T) {
	m := New(10)
	if !m.Defective(-1) || !m.Defective(10) {
		t.Error("out-of-range words must report defective")
	}
}

func TestSetDefectivePanicsOutOfRange(t *testing.T) {
	m := New(10)
	defer func() {
		if recover() == nil {
			t.Error("SetDefective(10) should panic")
		}
	}()
	m.SetDefective(10, true)
}

func TestBlockMask(t *testing.T) {
	m := New(24)
	m.SetDefective(8, true)  // block 1, word 0
	m.SetDefective(15, true) // block 1, word 7
	if got := m.BlockMask(0); got != 0 {
		t.Errorf("BlockMask(0) = %08b, want 0", got)
	}
	if got := m.BlockMask(1); got != 0b10000001 {
		t.Errorf("BlockMask(1) = %08b, want 10000001", got)
	}
}

func TestChunks(t *testing.T) {
	m := New(12)
	// Defects at 3 and 7: chunks [0,3), [4,7), [8,12).
	m.SetDefective(3, true)
	m.SetDefective(7, true)
	got := m.Chunks()
	want := []Chunk{{0, 3}, {4, 3}, {8, 4}}
	if len(got) != len(want) {
		t.Fatalf("Chunks = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("chunk %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestChunksEdges(t *testing.T) {
	all := New(4)
	if got := all.Chunks(); len(got) != 1 || got[0] != (Chunk{0, 4}) {
		t.Errorf("fault-free Chunks = %v", got)
	}
	none := New(3)
	for w := 0; w < 3; w++ {
		none.SetDefective(w, true)
	}
	if got := none.Chunks(); len(got) != 0 {
		t.Errorf("all-defective Chunks = %v, want empty", got)
	}
}

func TestRunLengthAt(t *testing.T) {
	m := New(10)
	m.SetDefective(4, true)
	tests := []struct{ w, want int }{{0, 4}, {3, 1}, {4, 0}, {5, 5}, {9, 1}}
	for _, tt := range tests {
		if got := m.RunLengthAt(tt.w); got != tt.want {
			t.Errorf("RunLengthAt(%d) = %d, want %d", tt.w, got, tt.want)
		}
	}
}

func TestChunksPartitionProperty(t *testing.T) {
	// Chunk lengths plus defect count always equals total words, and
	// chunks are separated by at least one defective word.
	f := func(seed int64, defectPct uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		p := float64(defectPct%100) / 100
		m := New(256)
		for w := 0; w < 256; w++ {
			if rng.Float64() < p {
				m.SetDefective(w, true)
			}
		}
		sum := 0
		prevEnd := -1
		for _, c := range m.Chunks() {
			if c.Len <= 0 || c.Start <= prevEnd {
				return false
			}
			for w := c.Start; w < c.Start+c.Len; w++ {
				if m.Defective(w) {
					return false
				}
			}
			prevEnd = c.Start + c.Len // position after chunk; next start must be > this-1
			sum += c.Len
		}
		return sum == m.FaultFreeWords()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGenerateStatistics(t *testing.T) {
	// At per-bit p = 1e-2, ~27.5% of words should be defective.
	rng := rand.New(rand.NewSource(1))
	m := Generate(8192, 1e-2, rng)
	frac := float64(m.CountDefective()) / 8192
	want := 1 - math.Pow(0.99, 32)
	if math.Abs(frac-want) > 0.03 {
		t.Errorf("defective fraction = %.3f, want ~%.3f", frac, want)
	}
}

func TestGenerateExtremes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if m := Generate(64, 0, rng); m.CountDefective() != 0 {
		t.Error("p=0 should give a fault-free map")
	}
	if m := Generate(64, 1, rng); m.CountDefective() != 64 {
		t.Error("p=1 should make every word defective")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(512, 1e-2, rand.New(rand.NewSource(7)))
	b := Generate(512, 1e-2, rand.New(rand.NewSource(7)))
	if !a.Equal(b) {
		t.Error("same seed must give identical maps")
	}
	c := Generate(512, 1e-2, rand.New(rand.NewSource(8)))
	if a.Equal(c) {
		t.Error("different seeds should differ (overwhelmingly)")
	}
}

func TestSeriesNesting(t *testing.T) {
	// Maps at decreasing voltage (increasing pfail) must be nested.
	s := NewSeries(4096, rand.New(rand.NewSource(3)))
	pfails := []float64{1e-4, 1e-3, math.Pow(10, -2.5), 1e-2}
	var prev *Map
	for _, p := range pfails {
		m := s.MapAt(p)
		if prev != nil && !m.Subsumes(prev) {
			t.Errorf("map at p=%v does not subsume map at lower p", p)
		}
		prev = m
	}
}

func TestSeriesMatchesDirectGeneration(t *testing.T) {
	// The per-word min-of-32-uniforms shortcut must give the same marginal
	// defect rate as per-bit generation.
	s := NewSeries(20000, rand.New(rand.NewSource(4)))
	p := 1e-2
	frac := float64(s.MapAt(p).CountDefective()) / 20000
	want := 1 - math.Pow(1-p, 32)
	if math.Abs(frac-want) > 0.02 {
		t.Errorf("series defect fraction = %.4f, want ~%.4f", frac, want)
	}
}

func TestSeriesZeroPfail(t *testing.T) {
	s := NewSeries(128, rand.New(rand.NewSource(5)))
	if m := s.MapAt(0); m.CountDefective() != 0 {
		t.Error("pfail 0 must give a fault-free map")
	}
}

func TestCloneIndependence(t *testing.T) {
	m := New(64)
	m.SetDefective(5, true)
	c := m.Clone()
	c.SetDefective(6, true)
	if m.Defective(6) {
		t.Error("Clone is not independent")
	}
	if !c.Defective(5) {
		t.Error("Clone lost defects")
	}
}

func TestSubsumes(t *testing.T) {
	a, b := New(64), New(64)
	a.SetDefective(1, true)
	a.SetDefective(2, true)
	b.SetDefective(1, true)
	if !a.Subsumes(b) {
		t.Error("a should subsume b")
	}
	if b.Subsumes(a) {
		t.Error("b should not subsume a")
	}
	if !a.Subsumes(a) {
		t.Error("Subsumes must be reflexive")
	}
	c := New(32)
	if a.Subsumes(c) {
		t.Error("different sizes must not subsume")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, words := range []int{1, 63, 64, 65, 8192} {
		m := Generate(words, 1e-2, rng)
		data, err := m.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var got Map
		if err := got.UnmarshalBinary(data); err != nil {
			t.Fatalf("words=%d: %v", words, err)
		}
		if !got.Equal(m) {
			t.Errorf("words=%d: round trip mismatch", words)
		}
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":       {},
		"short":       []byte("FMA"),
		"bad magic":   append([]byte("XMAP"), make([]byte, 16)...),
		"bad version": {'F', 'M', 'A', 'P', 9, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},
		"zero words":  {'F', 'M', 'A', 'P', 1, 0, 0, 0, 0, 0, 0, 0},
		"bad length":  {'F', 'M', 'A', 'P', 1, 0, 0, 0, 64, 0, 0, 0, 1, 2, 3},
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			var m Map
			if err := m.UnmarshalBinary(data); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestUnmarshalRejectsStrayBits(t *testing.T) {
	m := New(10)
	data, _ := m.MarshalBinary()
	data[len(data)-1] = 0x80 // bit 63 of the only limb: beyond word 9
	var got Map
	if err := got.UnmarshalBinary(data); err == nil {
		t.Error("stray bits beyond word count must be rejected")
	}
}

func TestMarshalPropertyRoundTrip(t *testing.T) {
	f := func(seed int64, sz uint16) bool {
		words := int(sz%2048) + 1
		m := Generate(words, 0.1, rand.New(rand.NewSource(seed)))
		data, err := m.MarshalBinary()
		if err != nil {
			return false
		}
		var got Map
		if err := got.UnmarshalBinary(data); err != nil {
			return false
		}
		return got.Equal(m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
