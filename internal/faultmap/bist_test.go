package faultmap

import (
	"math/rand"
	"testing"

	"repro/internal/sram"
)

func TestBISTRecoversFaultMap(t *testing.T) {
	model := sram.NewModel()
	for _, seed := range []int64{1, 2, 3} {
		rng := rand.New(rand.NewSource(seed))
		want := Generate(2048, 1e-2, rng)
		arr := NewArray(want, model, rng)
		got := RunBIST(arr)
		if !got.Equal(want) {
			t.Errorf("seed %d: BIST map differs from injected map (got %d defects, want %d)",
				seed, got.CountDefective(), want.CountDefective())
		}
	}
}

func TestBISTOnFaultFreeArray(t *testing.T) {
	model := sram.NewModel()
	rng := rand.New(rand.NewSource(1))
	arr := NewArray(New(256), model, rng)
	if got := RunBIST(arr); got.CountDefective() != 0 {
		t.Errorf("BIST found %d defects in a fault-free array", got.CountDefective())
	}
}

func TestArrayReadWriteFaultFree(t *testing.T) {
	model := sram.NewModel()
	arr := NewArray(New(16), model, rand.New(rand.NewSource(1)))
	arr.Write(3, 0xDEADBEEF)
	if got := arr.Read(3); got != 0xDEADBEEF {
		t.Errorf("Read = %#x, want 0xDEADBEEF", got)
	}
}

func TestArrayDefectiveWordCorrupts(t *testing.T) {
	model := sram.NewModel()
	m := New(4)
	m.SetDefective(2, true)
	arr := NewArray(m, model, rand.New(rand.NewSource(9)))
	// A stuck bit must make at least one of the two complementary
	// patterns read back wrong.
	arr.Write(2, 0xAAAAAAAA)
	a := arr.Read(2) != 0xAAAAAAAA
	arr.Write(2, 0x55555555)
	b := arr.Read(2) != 0x55555555
	if !a && !b {
		t.Error("defective word read back both patterns correctly")
	}
}

func TestArrayFailureModesAssigned(t *testing.T) {
	model := sram.NewModel()
	m := Generate(4096, 1e-2, rand.New(rand.NewSource(4)))
	arr := NewArray(m, model, rand.New(rand.NewSource(5)))
	seen := map[sram.FailureMode]int{}
	for w := 0; w < m.Words(); w++ {
		if m.Defective(w) {
			seen[arr.FailureMode(w)]++
		}
	}
	// With ~1100 defective words, every mode (smallest share 5%) should
	// appear.
	for _, mode := range sram.Modes() {
		if seen[mode] == 0 {
			t.Errorf("failure mode %v never assigned", mode)
		}
	}
	// Read failures (45%) should dominate hold failures (5%).
	if seen[sram.ReadFailure] <= seen[sram.HoldFailure] {
		t.Errorf("mode distribution off: read=%d hold=%d", seen[sram.ReadFailure], seen[sram.HoldFailure])
	}
}

func TestBISTDeterministicForSameArray(t *testing.T) {
	model := sram.NewModel()
	m := Generate(512, 1e-2, rand.New(rand.NewSource(11)))
	arr := NewArray(m, model, rand.New(rand.NewSource(12)))
	a := RunBIST(arr)
	b := RunBIST(arr)
	if !a.Equal(b) {
		t.Error("BIST must be repeatable on the same array")
	}
}
