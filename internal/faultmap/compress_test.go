package faultmap

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCompressedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, p := range []float64{0, 1e-4, 1e-3, 1e-2, 0.5, 1} {
		m := Generate(8192, p, rng)
		data, err := m.MarshalCompressed()
		if err != nil {
			t.Fatal(err)
		}
		var got Map
		if err := got.UnmarshalCompressed(data); err != nil {
			t.Fatalf("p=%v: %v", p, err)
		}
		if !got.Equal(m) {
			t.Errorf("p=%v: round trip mismatch", p)
		}
	}
}

func TestCompressedBeatsRawWhenSparse(t *testing.T) {
	// The whole point: 560 mV maps (26 defects of 8192 words) should be
	// far smaller compressed than the 1 KB raw bitset.
	rng := rand.New(rand.NewSource(2))
	m := Generate(8192, 1e-4, rng)
	raw, _ := m.MarshalBinary()
	z, _ := m.MarshalCompressed()
	if len(z) >= len(raw)/4 {
		t.Errorf("compressed %d bytes vs raw %d: want >=4x shrink for sparse maps", len(z), len(raw))
	}
}

func TestCompressedDenseStillCorrect(t *testing.T) {
	// At 400 mV (27.5% defective) compression may not win, but must stay
	// correct.
	rng := rand.New(rand.NewSource(3))
	m := Generate(8192, 1e-2, rng)
	z, _ := m.MarshalCompressed()
	var got Map
	if err := got.UnmarshalCompressed(z); err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Error("dense round trip mismatch")
	}
}

func TestUnmarshalCompressedRejectsGarbage(t *testing.T) {
	good, _ := New(64).MarshalCompressed()
	cases := map[string][]byte{
		"empty":     {},
		"short":     good[:8],
		"bad magic": append([]byte("XXXX"), good[4:]...),
		"bad count": {'F', 'M', 'P', 'Z', 1, 0, 0, 0, 8, 0, 0, 0, 99, 0, 0, 0},
		"trailing":  append(append([]byte{}, good...), 0xFF),
	}
	// A gap running past the word count must also fail.
	m := New(8)
	m.SetDefective(7, true)
	z, _ := m.MarshalCompressed()
	z[len(z)-1] = 200 // gap far beyond 8 words
	cases["overrun"] = z

	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			var got Map
			if err := got.UnmarshalCompressed(data); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestCompressedPropertyRoundTrip(t *testing.T) {
	f := func(seed int64, pRaw uint8) bool {
		p := float64(pRaw%100) / 120
		m := Generate(777, p, rand.New(rand.NewSource(seed)))
		z, err := m.MarshalCompressed()
		if err != nil {
			return false
		}
		var got Map
		if err := got.UnmarshalCompressed(z); err != nil {
			return false
		}
		return got.Equal(m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
