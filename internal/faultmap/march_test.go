package faultmap

import (
	"math/rand"
	"testing"

	"repro/internal/sram"
)

func TestMarchRecoversStuckFaults(t *testing.T) {
	model := sram.NewModel()
	for _, seed := range []int64{1, 2, 3} {
		rng := rand.New(rand.NewSource(seed))
		want := Generate(2048, 1e-2, rng)
		arr := NewArray(want, model, rng)
		got := MarchCMinus(arr)
		if !got.Map.Equal(want) {
			t.Errorf("seed %d: March C- map differs (got %d, want %d defects)",
				seed, got.Map.CountDefective(), want.CountDefective())
		}
	}
}

func TestMarchCleanArray(t *testing.T) {
	arr := NewArray(New(512), sram.NewModel(), rand.New(rand.NewSource(1)))
	res := MarchCMinus(arr)
	if res.Map.CountDefective() != 0 {
		t.Errorf("March found %d defects in a clean array", res.Map.CountDefective())
	}
}

func TestMarchCatchesDecoderFaultCheckerboardMisses(t *testing.T) {
	// The structural difference between the two tests: with a decoder
	// fault aliasing word 100 onto word 200, the checkerboard pass writes
	// the same pattern everywhere, so aliased reads still match and the
	// fault escapes. March C- holds a mixed 0/1 state while it walks, so
	// the alias is exposed.
	mkArr := func() *Array {
		a := NewArray(New(512), sram.NewModel(), rand.New(rand.NewSource(2)))
		a.WithDecoderFault(100, 200)
		return a
	}
	if got := RunBIST(mkArr()); got.CountDefective() != 0 {
		t.Fatalf("checkerboard unexpectedly caught the decoder fault (%d defects) — the march comparison is moot",
			got.CountDefective())
	}
	res := MarchCMinus(mkArr())
	if !res.Map.Defective(100) && !res.Map.Defective(200) {
		t.Error("March C- missed the decoder fault entirely")
	}
}

func TestMarchElementsDiagnosis(t *testing.T) {
	// A word stuck at all-ones fails every all-zero read (M1/M3/M5) but
	// passes the all-one reads.
	a := NewArray(New(64), sram.NewModel(), rand.New(rand.NewSource(3)))
	a.stuck[5] = stuckBits{mask: 0xFFFFFFFF, value: 0xFFFFFFFF}
	res := MarchCMinus(a)
	if !res.Map.Defective(5) {
		t.Fatal("stuck-at-ones word not flagged")
	}
	el := res.Elements[5]
	if el&(MarchM1|MarchM3|MarchM5) == 0 {
		t.Errorf("stuck-at-ones should fail a zero-read element, got %05b", el)
	}
	if el&(MarchM2|MarchM4) != 0 {
		t.Errorf("stuck-at-ones should pass the one-read elements, got %05b", el)
	}
	if mode := res.ModeOf(5); mode != sram.HoldFailure {
		t.Errorf("ModeOf = %v, want hold-class", mode)
	}

	// Stuck at all-zeros: the mirror image.
	b := NewArray(New(64), sram.NewModel(), rand.New(rand.NewSource(4)))
	b.stuck[9] = stuckBits{mask: 0xFFFFFFFF, value: 0}
	res = MarchCMinus(b)
	if mode := res.ModeOf(9); mode != sram.WriteFailure {
		t.Errorf("stuck-at-zero ModeOf = %v, want write-class", mode)
	}

	// A mixed-polarity defect fails both read polarities.
	c := NewArray(New(64), sram.NewModel(), rand.New(rand.NewSource(5)))
	c.stuck[7] = stuckBits{mask: 0b11, value: 0b01}
	res = MarchCMinus(c)
	if mode := res.ModeOf(7); mode != sram.ReadFailure {
		t.Errorf("mixed defect ModeOf = %v, want read/unstable class", mode)
	}
}

func TestWithDecoderFaultPanicsOutOfRange(t *testing.T) {
	a := NewArray(New(8), sram.NewModel(), rand.New(rand.NewSource(1)))
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	a.WithDecoderFault(0, 99)
}

func TestMarchRepeatable(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := Generate(256, 1e-2, rng)
	arr := NewArray(m, sram.NewModel(), rng)
	a := MarchCMinus(arr)
	b := MarchCMinus(arr)
	if !a.Map.Equal(b.Map) {
		t.Error("March C- must be repeatable")
	}
}
