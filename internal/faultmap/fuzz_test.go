package faultmap

import (
	"bytes"
	"math/rand"
	"testing"
)

// Fuzz targets for the two deserializers: arbitrary bytes must never
// panic, and any input that decodes must re-encode to an equivalent map.
// Run with `go test -fuzz=FuzzUnmarshalBinary` for a real campaign; under
// plain `go test` the seed corpus below runs as regression cases.

func FuzzUnmarshalBinary(f *testing.F) {
	good, _ := Generate(200, 0.1, rand.New(rand.NewSource(1))).MarshalBinary()
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte("FMAP"))
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		var m Map
		if err := m.UnmarshalBinary(data); err != nil {
			return
		}
		out, err := m.MarshalBinary()
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		var round Map
		if err := round.UnmarshalBinary(out); err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !round.Equal(&m) {
			t.Fatal("decode/encode/decode not idempotent")
		}
	})
}

func FuzzUnmarshalCompressed(f *testing.F) {
	good, _ := Generate(200, 0.1, rand.New(rand.NewSource(2))).MarshalCompressed()
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte("FMPZ"))
	f.Add(bytes.Repeat([]byte{0x80}, 40)) // pathological varints
	f.Fuzz(func(t *testing.T, data []byte) {
		var m Map
		if err := m.UnmarshalCompressed(data); err != nil {
			return
		}
		out, err := m.MarshalCompressed()
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		var round Map
		if err := round.UnmarshalCompressed(out); err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !round.Equal(&m) {
			t.Fatal("decode/encode/decode not idempotent")
		}
	})
}
