package faultmap

import "testing"

// FuzzMapMutation drives a Map through an arbitrary mutation sequence
// decoded from the fuzz input and checks the structural invariants the
// rest of the stack leans on: defect counts agree with per-word state,
// Clone and the binary encodings are faithful, and a map always
// subsumes itself. The first byte sizes the map; the rest decodes as
// (op, word) pairs.
func FuzzMapMutation(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{4, 1, 0, 0, 3, 1, 7})
	f.Add([]byte{31, 1, 200, 1, 201, 0, 200, 1, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		words := 8
		if len(data) > 0 {
			words = 8 * (1 + int(data[0])%32)
			data = data[1:]
		}
		m := New(words)
		for i := 0; i+1 < len(data); i += 2 {
			m.SetDefective(int(data[i+1])%words, data[i]&1 == 1)
		}

		count := 0
		for w := 0; w < words; w++ {
			if m.Defective(w) {
				count++
			}
		}
		if got := m.CountDefective(); got != count {
			t.Fatalf("CountDefective = %d, per-word count = %d", got, count)
		}
		if got := m.FaultFreeWords(); got != words-count {
			t.Fatalf("FaultFreeWords = %d, want %d", got, words-count)
		}
		if !m.Subsumes(m) {
			t.Fatal("map does not subsume itself")
		}
		if c := m.Clone(); !c.Equal(m) {
			t.Fatal("Clone not Equal to the original")
		}

		bin, err := m.MarshalBinary()
		if err != nil {
			t.Fatalf("MarshalBinary: %v", err)
		}
		var fromBin Map
		if err := fromBin.UnmarshalBinary(bin); err != nil {
			t.Fatalf("UnmarshalBinary: %v", err)
		}
		if !fromBin.Equal(m) {
			t.Fatal("binary round trip lost state")
		}
		comp, err := m.MarshalCompressed()
		if err != nil {
			t.Fatalf("MarshalCompressed: %v", err)
		}
		var fromComp Map
		if err := fromComp.UnmarshalCompressed(comp); err != nil {
			t.Fatalf("UnmarshalCompressed: %v", err)
		}
		if !fromComp.Equal(m) {
			t.Fatal("compressed round trip lost state")
		}

		// BlockMask must agree with the per-word view on every block.
		for b := 0; b < words/8; b++ {
			mask := m.BlockMask(b)
			for e := 0; e < 8; e++ {
				if m.Defective(8*b+e) != (mask&(1<<e) != 0) {
					t.Fatalf("block %d mask %08b disagrees with word %d", b, mask, 8*b+e)
				}
			}
		}
	})
}
