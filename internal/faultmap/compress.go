package faultmap

import (
	"encoding/binary"
	"fmt"
)

// Compressed serialization. The system stores one fault map per cache per
// DVFS operating point in off-chip storage (Section IV); at moderate
// voltages the maps are extremely sparse (26 defective words of 8192 at
// 560 mV), so run-length coding the gaps between defective words shrinks
// them by an order of magnitude. Format:
//
//	magic "FMPZ" | version uint16 | reserved uint16 | words uint32 |
//	count uint32 | varint gap... (gap = distance from the previous
//	defective word minus 1; first gap is the first defective index)
var magicZ = [4]byte{'F', 'M', 'P', 'Z'}

// MarshalCompressed returns the run-length-coded form of the map.
func (m *Map) MarshalCompressed() ([]byte, error) {
	buf := make([]byte, 0, 16)
	buf = append(buf, magicZ[:]...)
	buf = binary.LittleEndian.AppendUint16(buf, formatVersion)
	buf = binary.LittleEndian.AppendUint16(buf, 0)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.words))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.CountDefective()))
	prev := -1
	for w := 0; w < m.words; w++ {
		if !m.Defective(w) {
			continue
		}
		buf = binary.AppendUvarint(buf, uint64(w-prev-1))
		prev = w
	}
	return buf, nil
}

// UnmarshalCompressed decodes MarshalCompressed's format.
func (m *Map) UnmarshalCompressed(data []byte) error {
	if len(data) < 16 || string(data[:4]) != string(magicZ[:]) {
		return ErrBadFormat
	}
	if v := binary.LittleEndian.Uint16(data[4:6]); v != formatVersion {
		return fmt.Errorf("%w: unsupported version %d", ErrBadFormat, v)
	}
	words := int(binary.LittleEndian.Uint32(data[8:12]))
	count := int(binary.LittleEndian.Uint32(data[12:16]))
	if words <= 0 || count < 0 || count > words {
		return fmt.Errorf("%w: implausible geometry (%d words, %d defects)", ErrBadFormat, words, count)
	}
	out := New(words)
	rest := data[16:]
	pos := -1
	for i := 0; i < count; i++ {
		gap, n := binary.Uvarint(rest)
		if n <= 0 {
			return fmt.Errorf("%w: truncated gap stream at defect %d", ErrBadFormat, i)
		}
		rest = rest[n:]
		pos += int(gap) + 1
		if pos >= words {
			return fmt.Errorf("%w: defect %d beyond word count", ErrBadFormat, i)
		}
		out.SetDefective(pos, true)
	}
	if len(rest) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrBadFormat, len(rest))
	}
	*m = *out
	return nil
}
