package faultmap

import "repro/internal/sram"

// March C- self test ([23]-style). The checkerboard pass in RunBIST
// detects stuck bits, but because it writes the whole array with one
// pattern before reading anything, it is structurally blind to address
// decoder faults: if the decoder aliases two rows, every cell still holds
// the same pattern and every read matches. March C- interleaves reads and
// writes while the array holds a mixed 0/1 state, which is exactly what
// exposes aliasing — the industry reason March tests, not pattern tests,
// qualify SRAMs.
//
// Elements (word-level, 0 = all-zeros, 1 = all-ones):
//
//	M0: ⇕ w0          M1: ⇑ (r0, w1)     M2: ⇑ (r1, w0)
//	M3: ⇓ (r0, w1)    M4: ⇓ (r1, w0)     M5: ⇕ r0
const (
	// MarchM1..MarchM5 flag which element observed a word misbehave.
	MarchM1 uint8 = 1 << iota
	MarchM2
	MarchM3
	MarchM4
	MarchM5
)

// MarchResult carries the discovered fault map plus per-word diagnosis:
// which march elements flagged each word (useful for distinguishing
// stuck-at faults, which fail symmetric elements, from decoder faults,
// which fail the mixed-state elements asymmetrically).
type MarchResult struct {
	Map      *Map
	Elements []uint8
}

// MarchCMinus runs the word-level March C- over the array.
func MarchCMinus(a *Array) *MarchResult {
	const (
		zero = 0x00000000
		ones = 0xFFFFFFFF
	)
	n := a.Words()
	res := &MarchResult{Map: New(n), Elements: make([]uint8, n)}
	flag := func(w int, el uint8) {
		res.Map.SetDefective(w, true)
		res.Elements[w] |= el
	}

	// M0: ascending write 0.
	for w := 0; w < n; w++ {
		a.Write(w, zero)
	}
	// M1: ascending read 0, write 1.
	for w := 0; w < n; w++ {
		if a.Read(w) != zero {
			flag(w, MarchM1)
		}
		a.Write(w, ones)
	}
	// M2: ascending read 1, write 0.
	for w := 0; w < n; w++ {
		if a.Read(w) != ones {
			flag(w, MarchM2)
		}
		a.Write(w, zero)
	}
	// M3: descending read 0, write 1.
	for w := n - 1; w >= 0; w-- {
		if a.Read(w) != zero {
			flag(w, MarchM3)
		}
		a.Write(w, ones)
	}
	// M4: descending read 1, write 0.
	for w := n - 1; w >= 0; w-- {
		if a.Read(w) != ones {
			flag(w, MarchM4)
		}
		a.Write(w, zero)
	}
	// M5: final read 0.
	for w := 0; w < n; w++ {
		if a.Read(w) != zero {
			flag(w, MarchM5)
		}
	}
	return res
}

// WithDecoderFault makes accesses to word `from` alias to word `to`,
// modelling an address-decoder defect. Injection helper for BIST tests;
// it panics on out-of-range indices.
func (a *Array) WithDecoderFault(from, to int) {
	if from < 0 || from >= len(a.data) || to < 0 || to >= len(a.data) {
		//lvlint:ignore nopanic documented bounds panic in a test-injection helper
		panic("faultmap: decoder fault indices out of range")
	}
	if a.alias == nil {
		a.alias = make([]int32, len(a.data))
		for i := range a.alias {
			a.alias[i] = int32(i)
		}
	}
	a.alias[from] = int32(to)
}

// resolve applies any decoder aliasing to a word index.
func (a *Array) resolve(w int) int {
	if a.alias == nil {
		return w
	}
	return int(a.alias[w])
}

// ModeOf interprets a march diagnosis: a word failing the all-ones reads
// only (M2/M4) behaves like stuck-at-0 cells; failing the all-zero reads
// only (M1/M3/M5) like stuck-at-1; failing both is multi-bit or unstable;
// asymmetric single-element failures are the decoder/coupling signature.
func (r *MarchResult) ModeOf(w int) sram.FailureMode {
	el := r.Elements[w]
	zeroReads := el & (MarchM1 | MarchM3 | MarchM5)
	oneReads := el & (MarchM2 | MarchM4)
	switch {
	case zeroReads != 0 && oneReads != 0:
		return sram.ReadFailure // unstable/multi-bit: dominant read-disturb class
	case oneReads != 0:
		return sram.WriteFailure // cannot hold/reach ones: write-side
	default:
		return sram.HoldFailure // loses zeros: hold-side
	}
}
