package faultmap

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/sram"
)

func TestMultiBitFailProb(t *testing.T) {
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 0},
		{1, 1},
		{1e-2, 1 - math.Pow(0.99, 32) - 32*1e-2*math.Pow(0.99, 31)},
	}
	for _, tt := range tests {
		if got := MultiBitFailProb(tt.p); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("MultiBitFailProb(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestMultiBitAlwaysBelowWordFail(t *testing.T) {
	// SECDED can only help: the uncorrectable rate is strictly below the
	// raw word-defect rate for any p in (0,1).
	for _, p := range []float64{1e-4, 1e-3, 1e-2, 0.05} {
		raw := sram.GroupFail(p, 32)
		ecc := MultiBitFailProb(p)
		if ecc >= raw {
			t.Errorf("p=%v: multi-bit %v >= raw %v", p, ecc, raw)
		}
	}
}

func TestECCOverwhelmedAtDeepVoltage(t *testing.T) {
	// The paper's claim quantified: at 560 mV (p=1e-4) ECC's residual
	// defect rate is negligible (~5e-6); at 400 mV (p=1e-2) it is ~4% —
	// four orders of magnitude worse, squarely in word-disable territory.
	at560 := MultiBitFailProb(1e-4)
	at400 := MultiBitFailProb(1e-2)
	if at560 > 1e-5 {
		t.Errorf("residual at 560mV = %e, want < 1e-5", at560)
	}
	if at400 < 0.035 || at400 > 0.045 {
		t.Errorf("residual at 400mV = %v, want ~0.041", at400)
	}
	if at400/at560 < 1e3 {
		t.Errorf("deep scaling should blow up the residual rate by >1000x, got %vx", at400/at560)
	}
}

func TestSingleBitFailProb(t *testing.T) {
	if got := SingleBitFailProb(0); got != 0 {
		t.Errorf("SingleBitFailProb(0) = %v", got)
	}
	want := 32 * 1e-2 * math.Pow(0.99, 31)
	if got := SingleBitFailProb(1e-2); math.Abs(got-want) > 1e-12 {
		t.Errorf("SingleBitFailProb(1e-2) = %v, want %v", got, want)
	}
	// The three cases partition: P(0) + P(1) + P(>=2) = 1.
	p := 5e-3
	sum := math.Pow(1-p, 32) + SingleBitFailProb(p) + MultiBitFailProb(p)
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("partition sums to %v", sum)
	}
}

func TestGenerateSECDEDStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := GenerateSECDED(40000, 1e-2, rng)
	frac := float64(m.CountDefective()) / 40000
	want := MultiBitFailProb(1e-2)
	if math.Abs(frac-want) > 0.005 {
		t.Errorf("SECDED defect fraction = %.4f, want ~%.4f", frac, want)
	}
	if clean := GenerateSECDED(100, 0, rng); clean.CountDefective() != 0 {
		t.Error("p=0 must give a clean map")
	}
}
