// Package faultmap provides word-granularity fault maps for cache data
// arrays, the Monte Carlo machinery that generates them, and the BIST
// (built-in self-test) simulation that discovers them.
//
// The paper identifies defective words with BIST at every supported DVFS
// operating point, stores the maps off-chip, and loads the map matching
// the current operating condition into the FMAP array on a voltage switch
// (Section IV). Here a Map is the in-memory form, Series generates
// voltage-nested maps (a word that fails at 560 mV also fails at every
// lower voltage), and MarshalBinary/UnmarshalBinary provide the
// "off-chip storage" representation.
package faultmap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/bits"
	"math/rand"
)

// WordsPerBlock is the number of 32-bit words in a 32 B cache block.
const WordsPerBlock = 8

// Map is a word-granularity fault map: bit w set means physical word w of
// the data array is defective at the map's operating condition.
type Map struct {
	words int
	set   []uint64 // bitset, one bit per word
}

// New returns an all-fault-free map covering the given number of words.
// It panics if words is not positive: array geometry is fixed by the
// cache configuration, not runtime data.
func New(words int) *Map {
	if words <= 0 {
		//lvlint:ignore nopanic documented constructor guard: array geometry is fixed by the cache configuration
		panic("faultmap: New requires words > 0")
	}
	return &Map{words: words, set: make([]uint64, (words+63)/64)}
}

// Words returns the number of words the map covers.
func (m *Map) Words() int { return m.words }

// Defective reports whether word w is defective. Out-of-range words are
// reported as defective, which fails safe for callers that compute
// indices: touching memory outside the array is never fault-free.
func (m *Map) Defective(w int) bool {
	if w < 0 || w >= m.words {
		return true
	}
	return m.set[w>>6]&(1<<(uint(w)&63)) != 0
}

// SetDefective marks word w defective (true) or fault-free (false).
// Out-of-range indices panic: they indicate a geometry bug.
func (m *Map) SetDefective(w int, defective bool) {
	if w < 0 || w >= m.words {
		//lvlint:ignore nopanic documented bounds panic mirroring slice semantics: out-of-range means a geometry bug
		panic(fmt.Sprintf("faultmap: word %d out of range [0,%d)", w, m.words))
	}
	mask := uint64(1) << (uint(w) & 63)
	if defective {
		m.set[w>>6] |= mask
	} else {
		m.set[w>>6] &^= mask
	}
}

// CountDefective returns the number of defective words.
func (m *Map) CountDefective() int {
	n := 0
	for _, w := range m.set {
		n += bits.OnesCount64(w)
	}
	return n
}

// FaultFreeWords returns the number of fault-free words — the map's
// effective capacity in words (Figure 6a).
func (m *Map) FaultFreeWords() int { return m.words - m.CountDefective() }

// BlockMask returns an 8-bit mask of the defective words within the
// aligned 8-word block starting at word index block*WordsPerBlock. Bit i
// set means word i of the block is defective. This is the per-line fault
// pattern held in the FFW cache's FMAP array.
func (m *Map) BlockMask(block int) uint8 {
	base := block * WordsPerBlock
	var mask uint8
	for i := 0; i < WordsPerBlock; i++ {
		if m.Defective(base + i) {
			mask |= 1 << uint(i)
		}
	}
	return mask
}

// Chunk is a maximal run of contiguous fault-free words: the unit BBR
// allocates basic blocks into.
type Chunk struct {
	Start int // first word index of the run
	Len   int // run length in words
}

// Chunks enumerates every maximal fault-free chunk in ascending order.
func (m *Map) Chunks() []Chunk {
	var out []Chunk
	start := -1
	for w := 0; w <= m.words; w++ {
		if w < m.words && !m.Defective(w) {
			if start < 0 {
				start = w
			}
			continue
		}
		if start >= 0 {
			out = append(out, Chunk{Start: start, Len: w - start})
			start = -1
		}
	}
	return out
}

// RunLengthAt returns the length of the fault-free run starting exactly at
// word w (0 if w itself is defective). The scan stops at the end of the
// array; BBR's matcher handles wrap-around itself.
func (m *Map) RunLengthAt(w int) int {
	n := 0
	for w+n < m.words && !m.Defective(w+n) {
		n++
	}
	return n
}

// Clone returns a deep copy.
func (m *Map) Clone() *Map {
	c := New(m.words)
	copy(c.set, m.set)
	return c
}

// Equal reports whether two maps cover the same words with identical
// defect patterns.
func (m *Map) Equal(o *Map) bool {
	if m.words != o.words {
		return false
	}
	for i := range m.set {
		if m.set[i] != o.set[i] {
			return false
		}
	}
	return true
}

// Subsumes reports whether every word defective in o is also defective in
// m — the nesting invariant between a lower-voltage map (m) and a
// higher-voltage map (o).
func (m *Map) Subsumes(o *Map) bool {
	if m.words != o.words {
		return false
	}
	for i := range m.set {
		if o.set[i]&^m.set[i] != 0 {
			return false
		}
	}
	return true
}

// Generate draws a fault map for an array of the given number of words
// where each bit fails independently with probability pfailBit, so each
// 32-bit word is defective with 1-(1-p)^32. The rng must not be nil.
func Generate(words int, pfailBit float64, rng *rand.Rand) *Map {
	m := New(words)
	pWord := wordFailProb(pfailBit)
	for w := 0; w < words; w++ {
		if rng.Float64() < pWord {
			m.SetDefective(w, true)
		}
	}
	return m
}

func wordFailProb(pfailBit float64) float64 {
	if pfailBit <= 0 {
		return 0
	}
	if pfailBit >= 1 {
		return 1
	}
	return -math.Expm1(32 * math.Log1p(-pfailBit))
}

// Series holds voltage-nested randomness for one physical array: per word,
// the minimum of its 32 per-bit uniform draws. A word is defective at
// per-bit failure probability p iff its threshold < p, so maps taken at
// decreasing voltage (increasing p) are supersets of one another — exactly
// the physical behaviour of a die under deeper scaling.
type Series struct {
	thresholds []float64
}

// NewSeries draws the per-word thresholds for an array of the given number
// of words. The minimum of 32 i.i.d. uniforms is sampled directly via
// inverse CDF (1-(1-u)^(1/32)) — one draw per word instead of 32.
func NewSeries(words int, rng *rand.Rand) *Series {
	if words <= 0 {
		//lvlint:ignore nopanic documented constructor guard: array geometry is fixed by the cache configuration
		panic("faultmap: NewSeries requires words > 0")
	}
	t := make([]float64, words)
	for i := range t {
		u := rng.Float64()
		t[i] = -math.Expm1(math.Log1p(-u) / 32)
	}
	return &Series{thresholds: t}
}

// MapAt materializes the fault map of this die at the given per-bit
// failure probability.
func (s *Series) MapAt(pfailBit float64) *Map {
	m := New(len(s.thresholds))
	for w, th := range s.thresholds {
		if th < pfailBit {
			m.SetDefective(w, true)
		}
	}
	return m
}

// Words returns the number of words the series covers.
func (s *Series) Words() int { return len(s.thresholds) }

// Binary serialization: the paper stores fault maps in off-chip storage
// and loads them with special instructions or system calls on a DVFS
// switch. The format is:
//
//	magic "FMAP" | version uint16 | reserved uint16 | words uint32 | bitset
var (
	magic = [4]byte{'F', 'M', 'A', 'P'}
	// ErrBadFormat is returned when unmarshalling data that is not a
	// serialized fault map.
	ErrBadFormat = errors.New("faultmap: bad serialized format")
)

const formatVersion = 1

// MarshalBinary implements encoding.BinaryMarshaler.
func (m *Map) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 0, 12+8*len(m.set))
	buf = append(buf, magic[:]...)
	buf = binary.LittleEndian.AppendUint16(buf, formatVersion)
	buf = binary.LittleEndian.AppendUint16(buf, 0)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.words))
	for _, w := range m.set {
		buf = binary.LittleEndian.AppendUint64(buf, w)
	}
	return buf, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (m *Map) UnmarshalBinary(data []byte) error {
	if len(data) < 12 || string(data[:4]) != string(magic[:]) {
		return ErrBadFormat
	}
	if v := binary.LittleEndian.Uint16(data[4:6]); v != formatVersion {
		return fmt.Errorf("%w: unsupported version %d", ErrBadFormat, v)
	}
	words := int(binary.LittleEndian.Uint32(data[8:12]))
	if words <= 0 {
		return fmt.Errorf("%w: non-positive word count", ErrBadFormat)
	}
	nSet := (words + 63) / 64
	if len(data) != 12+8*nSet {
		return fmt.Errorf("%w: length %d does not match %d words", ErrBadFormat, len(data), words)
	}
	set := make([]uint64, nSet)
	for i := range set {
		set[i] = binary.LittleEndian.Uint64(data[12+8*i:])
	}
	// Reject stray bits beyond the last word so Equal/CountDefective stay
	// meaningful.
	if rem := uint(words) & 63; rem != 0 && set[nSet-1]>>rem != 0 {
		return fmt.Errorf("%w: defect bits beyond word count", ErrBadFormat)
	}
	m.words = words
	m.set = set
	return nil
}
