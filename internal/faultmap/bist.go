package faultmap

import (
	"math/rand"

	"repro/internal/sram"
)

// Array simulates an SRAM data array with manufacturing defects injected
// at word granularity. A defective word has one or more stuck bits; reads
// return the written value with the stuck bits forced, which is how BIST
// observes the defect.
type Array struct {
	data  []uint32
	stuck []stuckBits
	// alias implements address-decoder faults: access to word w lands on
	// alias[w]. nil means the decoder is healthy.
	alias []int32
}

// stuckBits describes the defect in one word: bits in mask are stuck at
// the corresponding bit of value.
type stuckBits struct {
	mask  uint32
	value uint32
	mode  sram.FailureMode
}

// NewArray builds an array whose defects follow the given fault map. Each
// defective word receives a geometrically distributed number of stuck
// bits (at least one) at random positions and polarities, and a failure
// mode drawn from the model's mode shares; fault-free words behave
// ideally. The rng drives defect details only — the defective/fault-free
// partition comes entirely from the map.
func NewArray(m *Map, model *sram.Model, rng *rand.Rand) *Array {
	a := &Array{
		data:  make([]uint32, m.Words()),
		stuck: make([]stuckBits, m.Words()),
	}
	for w := 0; w < m.Words(); w++ {
		if !m.Defective(w) {
			continue
		}
		var mask, value uint32
		// At least one stuck bit; each additional bit with probability
		// 1/4 (multi-bit defects from a single cell failure cluster are
		// possible but uncommon).
		for {
			bit := uint32(1) << uint(rng.Intn(32))
			mask |= bit
			if rng.Intn(2) == 1 {
				value |= bit
			}
			if rng.Float64() >= 0.25 {
				break
			}
		}
		a.stuck[w] = stuckBits{mask: mask, value: value, mode: drawMode(model, rng)}
	}
	return a
}

func drawMode(model *sram.Model, rng *rand.Rand) sram.FailureMode {
	u := rng.Float64()
	acc := 0.0
	modes := sram.Modes()
	for _, m := range modes {
		acc += model.ModeShare(m)
		if u < acc {
			return m
		}
	}
	return modes[len(modes)-1]
}

// Words returns the array size in words.
func (a *Array) Words() int { return len(a.data) }

// Write stores v into word w, subject to the word's defects.
func (a *Array) Write(w int, v uint32) {
	w = a.resolve(w)
	s := a.stuck[w]
	a.data[w] = (v &^ s.mask) | (s.value & s.mask)
}

// Read returns the content of word w, subject to the word's defects.
func (a *Array) Read(w int) uint32 {
	w = a.resolve(w)
	s := a.stuck[w]
	return (a.data[w] &^ s.mask) | (s.value & s.mask)
}

// FailureMode returns the failure mode of word w, valid only for words
// that BIST reports defective.
func (a *Array) FailureMode(w int) sram.FailureMode { return a.stuck[w].mode }

// RunBIST runs a march-style self test over the array and returns the
// discovered fault map. The test writes complementary checkerboard
// patterns (0xAAAAAAAA then 0x55555555) so that every bit is exercised at
// both polarities; any stuck bit disagrees with at least one read-back.
// This mirrors the paper's BIST pass executed at each DVFS operating
// point ([4], [23]).
func RunBIST(a *Array) *Map {
	const (
		pat0 = 0xAAAAAAAA
		pat1 = 0x55555555
	)
	m := New(a.Words())
	// March element 1: ascending write pat0, read pat0.
	for w := 0; w < a.Words(); w++ {
		a.Write(w, pat0)
	}
	for w := 0; w < a.Words(); w++ {
		if a.Read(w) != pat0 {
			m.SetDefective(w, true)
		}
	}
	// March element 2: descending write pat1, read pat1.
	for w := a.Words() - 1; w >= 0; w-- {
		a.Write(w, pat1)
	}
	for w := a.Words() - 1; w >= 0; w-- {
		if a.Read(w) != pat1 {
			m.SetDefective(w, true)
		}
	}
	return m
}
