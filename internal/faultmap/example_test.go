package faultmap_test

import (
	"fmt"
	"math/rand"

	"repro/internal/faultmap"
	"repro/internal/sram"
)

// Fault-free chunks are the unit BBR allocates basic blocks into.
func ExampleMap_Chunks() {
	m := faultmap.New(12)
	m.SetDefective(3, true)
	m.SetDefective(7, true)
	for _, c := range m.Chunks() {
		fmt.Printf("chunk at %d, %d words\n", c.Start, c.Len)
	}
	// Output:
	// chunk at 0, 3 words
	// chunk at 4, 3 words
	// chunk at 8, 4 words
}

// Sparse maps compress well: the off-chip copy of a 560 mV map is a few
// dozen bytes instead of a kilobyte.
func ExampleMap_MarshalCompressed() {
	m := faultmap.New(8192)
	m.SetDefective(100, true)
	m.SetDefective(4000, true)
	raw, _ := m.MarshalBinary()
	z, _ := m.MarshalCompressed()
	fmt.Printf("raw %d bytes, compressed %d bytes\n", len(raw), len(z))

	var back faultmap.Map
	if err := back.UnmarshalCompressed(z); err != nil {
		panic(err)
	}
	fmt.Printf("round trip equal: %v\n", back.Equal(m))
	// Output:
	// raw 1036 bytes, compressed 19 bytes
	// round trip equal: true
}

// March C- discovers the injected defects exactly, including the word's
// failure classification.
func ExampleMarchCMinus() {
	truth := faultmap.New(64)
	truth.SetDefective(9, true)
	arr := faultmap.NewArray(truth, sram.NewModel(), rand.New(rand.NewSource(1)))
	res := faultmap.MarchCMinus(arr)
	fmt.Printf("found %d defect(s); word 9 defective: %v\n",
		res.Map.CountDefective(), res.Map.Defective(9))
	// Output:
	// found 1 defect(s); word 9 defective: true
}

// Voltage-nested series: one die's maps at different operating points are
// consistent — scaling deeper only adds defects.
func ExampleSeries() {
	s := faultmap.NewSeries(8192, rand.New(rand.NewSource(7)))
	at560 := s.MapAt(1e-4)
	at400 := s.MapAt(1e-2)
	fmt.Printf("560mV defects ⊆ 400mV defects: %v\n", at400.Subsumes(at560))
	// Output:
	// 560mV defects ⊆ 400mV defects: true
}
