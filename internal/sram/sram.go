// Package sram models SRAM cell failure under voltage scaling and process
// variation (Section II of the paper).
//
// Random dopant fluctuation gives neighbouring transistors independent
// Gaussian threshold-voltage offsets; as the supply voltage drops, noise
// margins shrink and the per-cell failure probability Pfail rises
// exponentially. The package provides:
//
//   - a continuous per-bit Pfail(V) curve for 6T and 8T cells, calibrated
//     so that (a) the paper's Table II values are matched closely in the
//     region of interest and (b) the conventional Vccmin of a 32 KB 6T
//     array at 99.9% yield is exactly 760 mV;
//   - granularity aggregation (bit → 4 B word → 32 B block → array),
//     reproducing Figure 2;
//   - a yield model and a Vccmin solver.
//
// At the six tabulated DVFS operating points the fault-map generator uses
// the exact Table II probabilities (see package dvfs); the continuous
// curve here serves Figure 2, continuous yield queries and the Vccmin
// solver, and agrees with Table II to within 0.15 decades.
package sram

import (
	"fmt"
	"math"
)

// CellType selects the SRAM cell topology.
type CellType int

const (
	// Cell6T is the conventional 6-transistor cell used for L1 data
	// arrays: smallest area, but read stability degrades quickly at low
	// voltage.
	Cell6T CellType = iota
	// Cell8T is the robust 8-transistor cell (Chang et al. [6]) with a
	// decoupled read port. The paper uses it for tag arrays and the
	// fault-tolerance side structures; it operates a 32 KB array reliably
	// at 400 mV at the cost of ~30% cell area.
	Cell8T
)

// String implements fmt.Stringer.
func (c CellType) String() string {
	switch c {
	case Cell6T:
		return "6T"
	case Cell8T:
		return "8T"
	default:
		return fmt.Sprintf("CellType(%d)", int(c))
	}
}

// FailureMode enumerates the SRAM failure mechanisms of Section II-A.
type FailureMode int

const (
	// ReadFailure: read-disturb flips the stored value when the voltage
	// bump on the internal node exceeds the inverter switching point.
	ReadFailure FailureMode = iota
	// WriteFailure: the pass transistor cannot overpower the pull-up, so
	// the cell content fails to toggle.
	WriteFailure
	// AccessFailure: the bitline differential developed within the sense
	// window is too small for the sense amplifier.
	AccessFailure
	// HoldFailure: the cell loses state on a standby voltage droop.
	HoldFailure
)

// String implements fmt.Stringer.
func (m FailureMode) String() string {
	switch m {
	case ReadFailure:
		return "read"
	case WriteFailure:
		return "write"
	case AccessFailure:
		return "access"
	case HoldFailure:
		return "hold"
	default:
		return fmt.Sprintf("FailureMode(%d)", int(m))
	}
}

// Modes lists all failure modes.
func Modes() []FailureMode {
	return []FailureMode{ReadFailure, WriteFailure, AccessFailure, HoldFailure}
}

// Geometry constants used by the granularity helpers.
const (
	WordBits   = 32 // the paper addresses caches at 32-bit word granularity
	BlockBytes = 32 // 32 B cache blocks (Table I)
	BlockBits  = BlockBytes * 8
)

// TargetYield is the paper's manufacturing yield requirement: 999 of every
// 1000 dies must be fault-free.
const TargetYield = 0.999

// ConventionalVccminMV is the Vccmin of a conventional 6T 32 KB cache at
// TargetYield in 45 nm: the energy baseline of the whole paper.
const ConventionalVccminMV = 760

// Cache32KBBits is the number of data bits in a 32 KB cache array.
const Cache32KBBits = 32 * 1024 * 8

// Model is a calibrated failure-probability model. The zero value is not
// usable; construct with NewModel.
type Model struct {
	// log10 Pfail(V) for the 6T cell is the Newton-form cubic through the
	// four calibration anchors; coeffs/knots hold the divided differences
	// and anchor abscissae, V in volts.
	coeffs [4]float64
	knots  [3]float64
	// shift8T is the voltage headroom of the 8T cell: an 8T cell at V
	// fails like a 6T cell at V+shift8T. Calibrated so a 32 KB 8T array
	// meets TargetYield at 400 mV, per the paper's use of 8T tag arrays
	// at that voltage.
	shift8T float64
	// modeShare splits Pfail across failure modes for BIST
	// classification. Read/access failures dominate at low voltage.
	modeShare [4]float64
	// tempC is the junction temperature. The calibration anchors hold at
	// the reference 85°C corner; each degree above it erodes noise
	// margins like tempCoeffMV of supply (the paper notes Pfail is "a
	// function of supply voltage, temperature and transistor size").
	tempC       float64
	tempCoeffMV float64
}

// RefTempC is the reference junction temperature of the calibration (a
// hot embedded corner).
const RefTempC = 85

// NewModel returns the default 45 nm calibration.
//
// The 6T curve is the Newton-form cubic through four anchors:
//
//	Pfail(400 mV) = 1e-2, Pfail(480 mV) = 1e-3, Pfail(560 mV) = 1e-4
//	                (Table II values in the region of interest)
//	Pfail(760 mV) = the largest per-bit probability at which a 32 KB
//	                array still meets the 99.9% yield target
//
// so VccminMV(Cell6T, Cache32KBBits, TargetYield) == 760 exactly by
// construction, and the curve is within 0.02 decades of Table II at the
// remaining interior points (520 and 440 mV).
func NewModel() *Model {
	// Yield-target anchor at 760 mV: (1-p)^N >= y  =>  p = 1 - y^(1/N).
	p760 := 1 - math.Pow(TargetYield, 1.0/float64(Cache32KBBits))

	xs := [4]float64{0.400, 0.480, 0.560, 0.760}
	ys := [4]float64{-2, -3, -4, math.Log10(p760)}
	coeffs := newtonCoeffs(xs, ys)

	return &Model{
		coeffs: coeffs,
		knots:  [3]float64{xs[0], xs[1], xs[2]},
		// 8T at 400 mV behaves like 6T slightly above 760 mV: the
		// decoupled read port removes the dominant read-stability failure
		// mode. 365 mV of headroom keeps a 32 KB 8T array above the 99.9%
		// yield target at 400 mV with margin.
		shift8T: 0.365,
		// Low-voltage failure Pareto: read-disturb and access-time
		// failures dominate; write and hold are minor contributors.
		modeShare: [4]float64{0.45, 0.20, 0.30, 0.05},
		tempC:     RefTempC,
		// ~0.3 mV of effective supply per °C: a 60° swing moves Vccmin by
		// ~18 mV, in line with published hot/cold Vccmin spreads.
		tempCoeffMV: 0.3,
	}
}

// AtTemperature returns a copy of the model evaluated at the given
// junction temperature (°C). At RefTempC the copy is identical to the
// original.
func (m *Model) AtTemperature(tempC float64) *Model {
	c := *m
	c.tempC = tempC
	return &c
}

// Temperature returns the model's junction temperature in °C.
func (m *Model) Temperature() float64 { return m.tempC }

// newtonCoeffs returns the divided-difference coefficients of the cubic
// interpolating (xs[i], ys[i]).
func newtonCoeffs(xs, ys [4]float64) [4]float64 {
	d := ys
	for level := 1; level < 4; level++ {
		for i := 3; i >= level; i-- {
			d[i] = (d[i] - d[i-1]) / (xs[i] - xs[i-level])
		}
	}
	return d
}

// PfailBit returns the per-bit failure probability of the given cell type
// at the given supply voltage. The result is clamped to [0, 1].
func (m *Model) PfailBit(cell CellType, voltageMV float64) float64 {
	// Temperature above the reference corner erodes margin like a supply
	// droop; below it, adds margin.
	voltageMV -= m.tempCoeffMV * (m.tempC - RefTempC)
	v := voltageMV / 1000
	if cell == Cell8T {
		v += m.shift8T
	}
	// Horner evaluation of the Newton-form cubic.
	log10p := m.coeffs[3]
	for i := 2; i >= 0; i-- {
		log10p = log10p*(v-m.knots[i]) + m.coeffs[i]
	}
	p := math.Pow(10, log10p)
	if p > 1 {
		return 1
	}
	return p
}

// PfailGroup returns the probability that a group of bits contains at
// least one failing bit: 1 - (1-p)^bits. Bit failures are independent
// (random dopant fluctuation is modelled as i.i.d. Gaussian Vth shifts).
func (m *Model) PfailGroup(cell CellType, voltageMV float64, bits int) float64 {
	p := m.PfailBit(cell, voltageMV)
	return GroupFail(p, bits)
}

// GroupFail returns 1-(1-p)^bits, computed stably for tiny p.
func GroupFail(p float64, bits int) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return 1
	}
	// 1-(1-p)^n = -expm1(n*log1p(-p)).
	return -math.Expm1(float64(bits) * math.Log1p(-p))
}

// PfailWord returns the failure probability of a 4 B word.
func (m *Model) PfailWord(cell CellType, voltageMV float64) float64 {
	return m.PfailGroup(cell, voltageMV, WordBits)
}

// PfailBlock returns the failure probability of a 32 B cache block.
func (m *Model) PfailBlock(cell CellType, voltageMV float64) float64 {
	return m.PfailGroup(cell, voltageMV, BlockBits)
}

// Yield returns the probability that an array of arrayBits contains no
// failing cell at the given voltage — the paper's chip-yield criterion
// ("a die that contains even a single cell failure must be discarded").
func (m *Model) Yield(cell CellType, voltageMV float64, arrayBits int) float64 {
	return 1 - m.PfailGroup(cell, voltageMV, arrayBits)
}

// VccminMV returns the minimum supply voltage (in millivolts) at which an
// array of arrayBits still meets targetYield, found by bisection on the
// monotone yield curve. The search window is [200 mV, 1200 mV]; voltages
// outside it are clamped.
func (m *Model) VccminMV(cell CellType, arrayBits int, targetYield float64) float64 {
	lo, hi := 200.0, 1200.0
	if m.Yield(cell, hi, arrayBits) < targetYield {
		return hi
	}
	if m.Yield(cell, lo, arrayBits) >= targetYield {
		return lo
	}
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if m.Yield(cell, mid, arrayBits) >= targetYield {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}

// ModeShare returns the fraction of cell failures attributed to the given
// mode; the shares sum to 1. Used by the BIST simulation to classify
// defects.
func (m *Model) ModeShare(mode FailureMode) float64 {
	if mode < 0 || int(mode) >= len(m.modeShare) {
		return 0
	}
	return m.modeShare[mode]
}

// GranularityPoint is one sample of Figure 2: the failure probability of a
// bit, word, block and whole 32 KB array at one voltage.
type GranularityPoint struct {
	VoltageMV float64
	Bit       float64
	Word      float64 // 4 B
	Block     float64 // 32 B
	Cache32KB float64
}

// GranularityCurve samples Pfail at every granularity over
// [fromMV, toMV] in stepMV increments (inclusive of endpoints when they
// align), reproducing Figure 2 for the given cell type.
func (m *Model) GranularityCurve(cell CellType, fromMV, toMV, stepMV float64) []GranularityPoint {
	if stepMV <= 0 || toMV < fromMV {
		return nil
	}
	var out []GranularityPoint
	for v := fromMV; v <= toMV+1e-9; v += stepMV {
		out = append(out, GranularityPoint{
			VoltageMV: v,
			Bit:       m.PfailBit(cell, v),
			Word:      m.PfailWord(cell, v),
			Block:     m.PfailBlock(cell, v),
			Cache32KB: m.PfailGroup(cell, v, Cache32KBBits),
		})
	}
	return out
}
