package sram

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dvfs"
)

func TestAnchorsMatchTableII(t *testing.T) {
	m := NewModel()
	// The curve passes through the Table II endpoints exactly.
	if got := m.PfailBit(Cell6T, 400); math.Abs(math.Log10(got)-(-2)) > 1e-9 {
		t.Errorf("Pfail(400mV) = %.3e, want 1e-2", got)
	}
	if got := m.PfailBit(Cell6T, 560); math.Abs(math.Log10(got)-(-4)) > 1e-9 {
		t.Errorf("Pfail(560mV) = %.3e, want 1e-4", got)
	}
}

func TestInteriorPointsNearTableII(t *testing.T) {
	// At the interior DVFS points the smooth curve agrees with Table II to
	// within 0.05 decades (documented tolerance; fault maps use the exact
	// table values).
	m := NewModel()
	for _, p := range dvfs.LowVoltagePoints() {
		got := math.Log10(m.PfailBit(Cell6T, float64(p.VoltageMV)))
		want := math.Log10(p.PfailBit)
		if math.Abs(got-want) > 0.05 {
			t.Errorf("log10 Pfail(%dmV) = %.3f, table %.3f (drift > 0.05 decades)", p.VoltageMV, got, want)
		}
	}
}

func TestConventionalVccminIs760(t *testing.T) {
	m := NewModel()
	got := m.VccminMV(Cell6T, Cache32KBBits, TargetYield)
	if math.Abs(got-760) > 0.5 {
		t.Errorf("Vccmin(6T, 32KB, 99.9%%) = %.2f mV, want 760", got)
	}
}

func Test8TMeetsYieldAt400(t *testing.T) {
	// The paper's tag arrays and side structures use 8T cells and operate
	// at 400 mV; the 8T Vccmin for a 32 KB array must be <= 400 mV.
	m := NewModel()
	got := m.VccminMV(Cell8T, Cache32KBBits, TargetYield)
	if got > 400.5 {
		t.Errorf("Vccmin(8T, 32KB) = %.2f mV, want <= 400", got)
	}
	if y := m.Yield(Cell8T, 400, Cache32KBBits); y < TargetYield {
		t.Errorf("Yield(8T, 400mV, 32KB) = %v, want >= %v", y, TargetYield)
	}
}

func TestPfailMonotoneDecreasingInVoltage(t *testing.T) {
	m := NewModel()
	for _, cell := range []CellType{Cell6T, Cell8T} {
		prev := m.PfailBit(cell, 350)
		for v := 360.0; v <= 900; v += 10 {
			cur := m.PfailBit(cell, v)
			if cur > prev {
				t.Fatalf("%v Pfail not monotone at %vmV: %v > %v", cell, v, cur, prev)
			}
			prev = cur
		}
	}
}

func Test8TStrictlyMoreRobust(t *testing.T) {
	m := NewModel()
	for v := 350.0; v <= 800; v += 50 {
		p6, p8 := m.PfailBit(Cell6T, v), m.PfailBit(Cell8T, v)
		if p8 >= p6 {
			t.Errorf("at %vmV Pfail(8T)=%v >= Pfail(6T)=%v", v, p8, p6)
		}
	}
}

func TestGranularityOrdering(t *testing.T) {
	// Figure 2: cache > block > word > bit at every voltage, because each
	// coarser granularity is a union of failure events.
	m := NewModel()
	for _, p := range m.GranularityCurve(Cell6T, 350, 900, 25) {
		if !(p.Bit <= p.Word && p.Word <= p.Block && p.Block <= p.Cache32KB) {
			t.Errorf("granularity ordering violated at %vmV: %+v", p.VoltageMV, p)
		}
	}
}

func TestWordFailureAt400mV(t *testing.T) {
	// At 400 mV with per-bit Pfail 1e-2, a 4 B word is defective with
	// probability 1-(0.99)^32 ≈ 27.5% — this drives the whole evaluation.
	m := NewModel()
	got := m.PfailWord(Cell6T, 400)
	want := 1 - math.Pow(0.99, 32)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("PfailWord(400mV) = %v, want %v", got, want)
	}
	// And a 32 B block is almost always faulty (~92%).
	if b := m.PfailBlock(Cell6T, 400); b < 0.9 {
		t.Errorf("PfailBlock(400mV) = %v, want > 0.9", b)
	}
}

func TestGroupFail(t *testing.T) {
	tests := []struct {
		p    float64
		bits int
		want float64
	}{
		{0, 32, 0},
		{1, 32, 1},
		{0.5, 1, 0.5},
		{0.5, 2, 0.75},
		{0.01, 32, 1 - math.Pow(0.99, 32)},
	}
	for _, tt := range tests {
		if got := GroupFail(tt.p, tt.bits); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("GroupFail(%v, %d) = %v, want %v", tt.p, tt.bits, got, tt.want)
		}
	}
}

func TestGroupFailTinyPStability(t *testing.T) {
	// Stable for p far below float64 epsilon-per-term.
	got := GroupFail(1e-15, 1000)
	want := 1e-12 // ~n*p for tiny p
	if math.Abs(got-want)/want > 1e-6 {
		t.Errorf("GroupFail(1e-15, 1000) = %v, want ~%v", got, want)
	}
}

func TestGroupFailProperties(t *testing.T) {
	f := func(pRaw float64, bitsRaw uint16) bool {
		p := math.Mod(math.Abs(pRaw), 1)
		if math.IsNaN(p) {
			return true
		}
		bits := int(bitsRaw%4096) + 1
		g := GroupFail(p, bits)
		if g < 0 || g > 1 {
			return false
		}
		// More bits -> more likely to fail.
		return GroupFail(p, bits+1) >= g-1e-15
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestYieldComplement(t *testing.T) {
	m := NewModel()
	v := 480.0
	y := m.Yield(Cell6T, v, 1024)
	pf := m.PfailGroup(Cell6T, v, 1024)
	if math.Abs(y+pf-1) > 1e-12 {
		t.Errorf("yield + groupfail = %v, want 1", y+pf)
	}
}

func TestVccminMonotoneInArraySize(t *testing.T) {
	// Larger arrays need higher voltage for the same yield.
	m := NewModel()
	small := m.VccminMV(Cell6T, 8*1024*8, TargetYield)
	large := m.VccminMV(Cell6T, 256*1024*8, TargetYield)
	if small >= large {
		t.Errorf("Vccmin(8KB)=%v >= Vccmin(256KB)=%v", small, large)
	}
}

func TestVccminClamps(t *testing.T) {
	m := NewModel()
	// Impossible yield target -> clamps high. (Target > 1 is used because
	// at high voltage the group-failure probability underflows to exactly
	// zero, making yield == 1.0 attainable.)
	if got := m.VccminMV(Cell6T, Cache32KBBits, 1.1); got != 1200 {
		t.Errorf("Vccmin for yield 1.1 = %v, want clamp 1200", got)
	}
	// Trivial target -> clamps low.
	if got := m.VccminMV(Cell8T, 8, 0.0); got != 200 {
		t.Errorf("Vccmin for yield 0 = %v, want clamp 200", got)
	}
}

func TestModeSharesSumToOne(t *testing.T) {
	m := NewModel()
	sum := 0.0
	for _, mode := range Modes() {
		s := m.ModeShare(mode)
		if s <= 0 {
			t.Errorf("ModeShare(%v) = %v, want > 0", mode, s)
		}
		sum += s
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("mode shares sum to %v, want 1", sum)
	}
	if m.ModeShare(FailureMode(99)) != 0 {
		t.Error("unknown mode should have zero share")
	}
}

func TestGranularityCurveBounds(t *testing.T) {
	m := NewModel()
	if pts := m.GranularityCurve(Cell6T, 500, 400, 10); pts != nil {
		t.Error("inverted range should yield nil")
	}
	if pts := m.GranularityCurve(Cell6T, 400, 500, 0); pts != nil {
		t.Error("zero step should yield nil")
	}
	pts := m.GranularityCurve(Cell6T, 400, 500, 50)
	if len(pts) != 3 {
		t.Errorf("got %d points, want 3", len(pts))
	}
}

func TestStringers(t *testing.T) {
	if Cell6T.String() != "6T" || Cell8T.String() != "8T" {
		t.Error("CellType.String broken")
	}
	if CellType(7).String() != "CellType(7)" {
		t.Error("unknown CellType.String broken")
	}
	wantModes := map[FailureMode]string{
		ReadFailure: "read", WriteFailure: "write", AccessFailure: "access", HoldFailure: "hold",
	}
	for mode, want := range wantModes {
		if mode.String() != want {
			t.Errorf("FailureMode(%d).String = %q, want %q", mode, mode.String(), want)
		}
	}
	if FailureMode(9).String() != "FailureMode(9)" {
		t.Error("unknown FailureMode.String broken")
	}
}

func TestNewtonCoeffsInterpolate(t *testing.T) {
	// The Newton cubic must pass through its four defining points.
	xs := [4]float64{0, 1, 2, 4}
	ys := [4]float64{1, 3, -2, 5}
	c := newtonCoeffs(xs, ys)
	eval := func(x float64) float64 {
		v := c[3]
		for i := 2; i >= 0; i-- {
			v = v*(x-xs[i]) + c[i]
		}
		return v
	}
	for i := range xs {
		if got := eval(xs[i]); math.Abs(got-ys[i]) > 1e-9 {
			t.Errorf("cubic(%v) = %v, want %v", xs[i], got, ys[i])
		}
	}
}

func TestTemperatureDependence(t *testing.T) {
	m := NewModel()
	if m.Temperature() != RefTempC {
		t.Fatalf("default temperature = %v, want %v", m.Temperature(), RefTempC)
	}
	// At the reference corner the temperature knob is a no-op: anchors
	// hold exactly.
	if got := m.AtTemperature(RefTempC).PfailBit(Cell6T, 400); got != m.PfailBit(Cell6T, 400) {
		t.Error("AtTemperature(ref) changed the model")
	}
	// Hotter silicon fails more; colder less.
	hot := m.AtTemperature(125)
	cold := m.AtTemperature(25)
	base := m.PfailBit(Cell6T, 480)
	if hot.PfailBit(Cell6T, 480) <= base {
		t.Error("125°C should raise Pfail")
	}
	if cold.PfailBit(Cell6T, 480) >= base {
		t.Error("25°C should lower Pfail")
	}
	// Vccmin moves by roughly the coefficient times the swing: 40° ->
	// ~12 mV.
	vHot := hot.VccminMV(Cell6T, Cache32KBBits, TargetYield)
	vBase := m.VccminMV(Cell6T, Cache32KBBits, TargetYield)
	if shift := vHot - vBase; shift < 5 || shift > 25 {
		t.Errorf("Vccmin shift at 125°C = %.1f mV, want ~12", shift)
	}
	if !(cold.VccminMV(Cell6T, Cache32KBBits, TargetYield) < vBase) {
		t.Error("cold Vccmin should be lower")
	}
}

func TestTemperatureMonotoneProperty(t *testing.T) {
	m := NewModel()
	prev := m.AtTemperature(-20).PfailBit(Cell6T, 500)
	for tC := -10.0; tC <= 125; tC += 5 {
		cur := m.AtTemperature(tC).PfailBit(Cell6T, 500)
		if cur < prev {
			t.Fatalf("Pfail not monotone in temperature at %v°C", tC)
		}
		prev = cur
	}
}
