package sram_test

import (
	"fmt"

	"repro/internal/sram"
)

// The paper's central reliability numbers at the deepest operating point:
// a per-bit failure probability of 1e-2 makes 27.5% of words and 92.4%
// of blocks defective, and pins the conventional cache at 760 mV.
func ExampleModel_PfailWord() {
	m := sram.NewModel()
	fmt.Printf("word: %.3f  block: %.3f\n",
		m.PfailWord(sram.Cell6T, 400), m.PfailBlock(sram.Cell6T, 400))
	// Output:
	// word: 0.275  block: 0.924
}

// Vccmin: the lowest voltage at which a 32 KB array still meets the
// 99.9% manufacturing yield target.
func ExampleModel_VccminMV() {
	m := sram.NewModel()
	fmt.Printf("conventional 6T: %.0f mV\n",
		m.VccminMV(sram.Cell6T, sram.Cache32KBBits, sram.TargetYield))
	// Output:
	// conventional 6T: 760 mV
}

// GroupFail aggregates independent bit failures: any failing bit kills
// the word.
func ExampleGroupFail() {
	fmt.Printf("%.4f\n", sram.GroupFail(0.01, 32))
	// Output:
	// 0.2750
}
