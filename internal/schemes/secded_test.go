package schemes

import (
	"math/rand"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/faultmap"
)

func TestSECDEDBasics(t *testing.T) {
	s, err := NewSECDED(cleanMap(), next(t))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "SECDED" || s.HitLatency() != 3 {
		t.Errorf("name=%q lat=%d, want SECDED/3", s.Name(), s.HitLatency())
	}
	s.Read(0x40)
	if out := s.Read(0x40); !out.Hit || out.Latency != 3 {
		t.Errorf("warm read = %+v (correction stage costs a cycle)", out)
	}
	if out := s.Fetch(0x40); !out.Hit {
		t.Error("Fetch should share the Read path")
	}
}

func TestSECDEDRejectsBadInputs(t *testing.T) {
	if _, err := NewSECDED(faultmap.New(10), next(t)); err == nil {
		t.Error("wrong-size map must be rejected")
	}
	if _, err := NewSECDED(cleanMap(), nil); err == nil {
		t.Error("nil next level must be rejected")
	}
}

func TestSECDEDUncorrectableWordAlwaysMisses(t *testing.T) {
	cfg := cache.L1Config("x")
	mb := cleanMap()
	for way := 0; way < 4; way++ {
		mb.SetDefective(cfg.FrameWordIndex(0, way, 2), true)
	}
	n := next(t)
	s, _ := NewSECDED(mb, n)
	addr := uint64(2 * 4)
	for i := 0; i < 4; i++ {
		if out := s.Read(addr); out.Hit {
			t.Fatal("uncorrectable word must never hit")
		}
	}
	if n.DemandReads() != 4 {
		t.Errorf("L2 reads = %d, want 4", n.DemandReads())
	}
	if s.Stats().DefectMisses != 4 {
		t.Errorf("DefectMisses = %d", s.Stats().DefectMisses)
	}
}

func TestSECDEDWrite(t *testing.T) {
	n := next(t)
	s, _ := NewSECDED(cleanMap(), n)
	if out := s.Write(0x80); out.Hit {
		t.Error("write miss should not hit")
	}
	s.Read(0x80)
	if out := s.Write(0x84); !out.Hit {
		t.Error("write to resident correctable word should hit")
	}
	if n.WordWrites() != 2 {
		t.Errorf("WordWrites = %d", n.WordWrites())
	}
}

func TestSECDEDVsWdisResidualRates(t *testing.T) {
	// The ECC story end to end: at 560 mV SECDED's map is essentially
	// clean while word-disable's already carries defects; at 400 mV
	// SECDED's residual map approaches word-disable territory (4% vs
	// 27.5% of words).
	count := func(p float64, seed int64, gen func(int, float64, *rand.Rand) *faultmap.Map) int {
		return gen(l1Words, p, rand.New(rand.NewSource(seed))).CountDefective()
	}
	ecc560 := count(1e-4, 1, faultmap.GenerateSECDED)
	raw560 := count(1e-4, 1, faultmap.Generate)
	if ecc560 > raw560/4 {
		t.Errorf("at 560mV ECC residual (%d) should be far below raw (%d)", ecc560, raw560)
	}
	ecc400 := count(1e-2, 2, faultmap.GenerateSECDED)
	if ecc400 < 250 {
		t.Errorf("at 400mV ECC residual defects = %d, want hundreds (overwhelmed)", ecc400)
	}
}

func TestSECDEDImplementsInterfaces(t *testing.T) {
	var _ core.DataCache = (*SECDED)(nil)
	var _ core.InstrCache = (*SECDED)(nil)
}
