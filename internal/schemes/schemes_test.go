package schemes

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/faultmap"
)

const l1Words = 32 * 1024 / 4

func next(t *testing.T) *core.NextLevel {
	t.Helper()
	return core.NewNextLevel(100)
}

func cleanMap() *faultmap.Map { return faultmap.New(l1Words) }

// mapAt400 is a fault map at the paper's deepest point (Pfail 1e-2).
func mapAt400(seed int64) *faultmap.Map {
	return faultmap.Generate(l1Words, 1e-2, rand.New(rand.NewSource(seed)))
}

func TestPlainVariants(t *testing.T) {
	n := next(t)
	tests := []struct {
		c    *Plain
		name string
		lat  int
	}{
		{NewDefectFree(n), "DefectFree", 2},
		{NewConventional(n), "Conventional", 2},
		{New8T(n), "8T", 3},
	}
	for _, tt := range tests {
		if tt.c.Name() != tt.name || tt.c.HitLatency() != tt.lat {
			t.Errorf("%s: name=%q lat=%d", tt.name, tt.c.Name(), tt.c.HitLatency())
		}
	}
}

func TestPlainReadWriteFetch(t *testing.T) {
	n := next(t)
	p := NewDefectFree(n)
	if out := p.Read(0x100); out.Hit {
		t.Error("cold read hit")
	}
	if out := p.Read(0x104); !out.Hit || out.Latency != 2 {
		t.Errorf("warm read = %+v", out)
	}
	if out := p.Fetch(0x104); !out.Hit {
		t.Error("fetch should share Read path")
	}
	if out := p.Write(0x200); out.Hit {
		t.Error("write miss should not hit (no write allocate)")
	}
	if n.WordWrites() != 1 {
		t.Error("write-through traffic missing")
	}
}

func Test8TExtraCycleVisible(t *testing.T) {
	n := next(t)
	c := New8T(n)
	c.Read(0x40)
	if out := c.Read(0x40); out.Latency != 3 {
		t.Errorf("8T hit latency = %d, want 3", out.Latency)
	}
}

func TestSimpleWdisCleanMapBehavesNormally(t *testing.T) {
	s, err := NewSimpleWdis(cleanMap(), next(t))
	if err != nil {
		t.Fatal(err)
	}
	s.Read(0x40)
	if out := s.Read(0x40); !out.Hit || out.Latency != 2 {
		t.Errorf("warm read = %+v (wdis adds no latency)", out)
	}
}

func TestSimpleWdisDefectiveWordAlwaysMisses(t *testing.T) {
	fm := cleanMap()
	// Frame (set 0, way 0..3): make word 3 defective in every way of set
	// 0, so address word 3 of set 0 can never be cached.
	cfg := cache.L1Config("x")
	for way := 0; way < 4; way++ {
		fm.SetDefective(cfg.FrameWordIndex(0, way, 3), true)
	}
	n := next(t)
	s, err := NewSimpleWdis(fm, n)
	if err != nil {
		t.Fatal(err)
	}
	addr := uint64(3 * 4) // set 0, word 3
	for i := 0; i < 5; i++ {
		if out := s.Read(addr); out.Hit {
			t.Fatalf("read %d of a defective word hit", i)
		}
	}
	if got := n.DemandReads(); got != 5 {
		t.Errorf("L2 reads = %d, want 5 (every access is an L2 trip)", got)
	}
	// The line was filled by the very first (tag-miss) read, so the
	// fault-free word 1 of the same block hits.
	if out := s.Read(uint64(4)); !out.Hit {
		t.Error("fault-free word of the resident line should hit")
	}
	st := s.Stats()
	if st.DefectMisses != 5 {
		t.Errorf("DefectMisses = %d, want 5", st.DefectMisses)
	}
}

func TestSimpleWdisNeighbourWordsStillHit(t *testing.T) {
	fm := cleanMap()
	cfg := cache.L1Config("x")
	for way := 0; way < 4; way++ {
		fm.SetDefective(cfg.FrameWordIndex(0, way, 3), true)
	}
	s, _ := NewSimpleWdis(fm, next(t))
	s.Read(0x0C) // word 3: defective; fills the line
	if out := s.Read(0x04); !out.Hit {
		t.Error("fault-free word of a resident line must hit")
	}
}

func TestWilkersonPlusBasics(t *testing.T) {
	w, err := NewWilkersonPlus(cleanMap(), next(t))
	if err != nil {
		t.Fatal(err)
	}
	if w.Name() != "Wilkerson+" || w.HitLatency() != 3 {
		t.Errorf("name=%q lat=%d", w.Name(), w.HitLatency())
	}
	w.Read(0x40)
	if out := w.Read(0x40); !out.Hit || out.Latency != 3 {
		t.Errorf("warm read = %+v", out)
	}
}

func TestWilkersonHalvedAssociativity(t *testing.T) {
	w, _ := NewWilkersonPlus(cleanMap(), next(t))
	// Three distinct blocks in one set: only 2 logical ways, so the third
	// fill evicts the LRU.
	stride := uint64(256 * 32)
	w.Read(0)
	w.Read(stride)
	w.Read(0) // 0 is MRU
	w.Read(2 * stride)
	if out := w.Read(0); !out.Hit {
		t.Error("MRU line evicted")
	}
	if out := w.Read(stride); out.Hit {
		t.Error("LRU line should have been evicted (capacity halved)")
	}
}

func TestWilkersonSlotNeedsBothEntriesDefective(t *testing.T) {
	cfg := cache.L1Config("x")
	fm := cleanMap()
	// Word 2 defective in frame (0,0) only: slot still usable via (0,1).
	fm.SetDefective(cfg.FrameWordIndex(0, 0, 2), true)
	w, _ := NewWilkersonPlus(fm, next(t))
	addr := uint64(2 * 4)
	w.Read(addr)
	if out := w.Read(addr); !out.Hit {
		t.Error("slot with one good physical entry must hit")
	}
	// Now both entries defective: slot dead, every access is an L2 trip.
	fm2 := cleanMap()
	fm2.SetDefective(cfg.FrameWordIndex(0, 0, 2), true)
	fm2.SetDefective(cfg.FrameWordIndex(0, 1, 2), true)
	n := next(t)
	w2, _ := NewWilkersonPlus(fm2, n)
	w2.Read(addr)
	w2.Read(addr)
	// Both logical ways in set 0: logical way 0 = frames 0,1 (dead slot),
	// logical way 1 = frames 2,3 (fine). The first fill may land in
	// either; if it landed in the dead way, accesses miss. Drive enough
	// traffic to occupy both logical ways with distinct tags.
	if Coverable(fm2) {
		t.Error("fault map with a dead slot must not be coverable by plain Wilkerson")
	}
	if !Coverable(fm) {
		t.Error("a slot with one good physical entry keeps the map coverable")
	}
}

func TestCoverable(t *testing.T) {
	if !Coverable(cleanMap()) {
		t.Error("clean map must be coverable")
	}
	if Coverable(faultmap.New(100)) {
		t.Error("wrong-size map must report not coverable")
	}
	// At 400 mV plain Wilkerson essentially never covers: slot-death
	// probability per slot is pword² ≈ 0.076, with 8192 slots.
	if Coverable(mapAt400(1)) {
		t.Error("400 mV map should not be coverable by plain Wilkerson")
	}
}

func TestFBADefectiveWordServedByBuffer(t *testing.T) {
	cfg := cache.L1Config("x")
	fm := cleanMap()
	for way := 0; way < 4; way++ {
		fm.SetDefective(cfg.FrameWordIndex(0, way, 5), true)
	}
	n := next(t)
	f, err := NewFBA(fm, n, 64)
	if err != nil {
		t.Fatal(err)
	}
	addr := uint64(5 * 4)
	out := f.Read(addr)
	if out.Hit {
		t.Error("first defective read must miss")
	}
	out = f.Read(addr)
	if !out.Hit || out.Latency != 3 {
		t.Errorf("buffered defective read = %+v, want hit at 3 cycles", out)
	}
	st := f.Stats()
	if st.BufferHits != 1 || st.BufferFills != 1 || st.DefectAccesses != 2 {
		t.Errorf("stats = %+v", st)
	}
	if got := n.DemandReads(); got != 1 {
		t.Errorf("L2 reads = %d, want 1 (buffer absorbed the repeat)", got)
	}
}

func TestFBAEvictsLRU(t *testing.T) {
	cfg := cache.L1Config("x")
	fm := cleanMap()
	// Three defective words in distinct sets, buffer of 2 entries.
	addrs := []uint64{}
	for i := 0; i < 3; i++ {
		set := i
		fm.SetDefective(cfg.FrameWordIndex(set, 0, 0), true)
		for way := 1; way < 4; way++ {
			fm.SetDefective(cfg.FrameWordIndex(set, way, 0), true)
		}
		addrs = append(addrs, uint64(set*32))
	}
	f, _ := NewFBA(fm, next(t), 2)
	f.Read(addrs[0])
	f.Read(addrs[1])
	f.Read(addrs[0]) // refresh 0
	f.Read(addrs[2]) // evicts 1
	if out := f.Read(addrs[0]); !out.Hit {
		t.Error("refreshed entry was evicted")
	}
	if out := f.Read(addrs[1]); out.Hit {
		t.Error("LRU entry should have been evicted")
	}
	if f.Entries() != 2 {
		t.Errorf("Entries = %d, want 2", f.Entries())
	}
}

func TestFBARejectsBadInputs(t *testing.T) {
	if _, err := NewFBA(cleanMap(), next(t), 0); err == nil {
		t.Error("zero entries must be rejected")
	}
	if _, err := NewFBA(faultmap.New(10), next(t), 64); err == nil {
		t.Error("wrong-size map must be rejected")
	}
}

func TestFBANames(t *testing.T) {
	a, _ := NewFBA(cleanMap(), next(t), 64)
	b, _ := NewFBA(cleanMap(), next(t), 1024)
	if a.Name() != "FBA" || b.Name() != "FBA+" {
		t.Errorf("names = %q, %q", a.Name(), b.Name())
	}
}

func TestIDCBasics(t *testing.T) {
	cfg := cache.L1Config("x")
	fm := cleanMap()
	for way := 0; way < 4; way++ {
		fm.SetDefective(cfg.FrameWordIndex(0, way, 1), true)
	}
	n := next(t)
	c, err := NewIDC(fm, n, 64)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "IDC" || c.HitLatency() != 3 {
		t.Errorf("name=%q lat=%d", c.Name(), c.HitLatency())
	}
	addr := uint64(4)
	c.Read(addr)
	if out := c.Read(addr); !out.Hit {
		t.Error("aux cache should serve the repeat")
	}
	big, _ := NewIDC(cleanMap(), next(t), 1024)
	if big.Name() != "IDC+" {
		t.Errorf("name = %q", big.Name())
	}
}

func TestIDCConflictEviction(t *testing.T) {
	// IDC's set-associative aux suffers conflicts the FBA would not:
	// IDCAssoc+1 defective words mapping to the same aux set evict each
	// other even though total capacity is plentiful.
	cfg := cache.L1Config("x")
	fm := cleanMap()
	entries := 64
	sets := entries / IDCAssoc // 16 aux sets
	var addrs []uint64
	// Word addresses congruent mod sets land in one aux set. Use
	// different L1 sets to avoid main-cache interference.
	for i := 0; i < IDCAssoc+1; i++ {
		l1set := i * sets / 8 // keep them in distinct L1 sets
		wordInBlock := 0
		wordAddr := uint64(l1set*8 + wordInBlock)
		if wordAddr%uint64(sets) != addrsMod(addrs, uint64(sets)) && len(addrs) > 0 {
			continue
		}
		for way := 0; way < 4; way++ {
			fm.SetDefective(cfg.FrameWordIndex(l1set, way, wordInBlock), true)
		}
		addrs = append(addrs, wordAddr*4)
	}
	if len(addrs) < IDCAssoc+1 {
		t.Skip("could not construct conflicting addresses")
	}
	c, _ := NewIDC(fm, next(t), entries)
	for _, a := range addrs {
		c.Read(a)
	}
	// First address was LRU, evicted by the fifth.
	if out := c.Read(addrs[0]); out.Hit {
		t.Error("aux conflict should have evicted the first word")
	}
}

func addrsMod(addrs []uint64, m uint64) uint64 {
	if len(addrs) == 0 {
		return 0
	}
	return (addrs[0] / 4) % m
}

func TestIDCRejectsBadEntries(t *testing.T) {
	if _, err := NewIDC(cleanMap(), next(t), 3); err == nil {
		t.Error("entries below one set must be rejected")
	}
	if _, err := NewIDC(cleanMap(), next(t), 96); err == nil {
		t.Error("non-power-of-two sets must be rejected")
	}
}

func TestSchemeHitRatesOrderingAt400mV(t *testing.T) {
	// Drive identical access streams at Pfail 1e-2 and check the
	// qualitative ordering the paper reports: FBA+/IDC+ recover most
	// defective accesses; Simple-wdis does not.
	run := func(build func(fm *faultmap.Map, n *core.NextLevel) core.DataCache) float64 {
		fm := mapAt400(7)
		n := core.NewNextLevel(100)
		c := build(fm, n)
		rng := rand.New(rand.NewSource(9))
		hits, total := 0, 0
		// High-reuse workload over a small footprint.
		for i := 0; i < 60000; i++ {
			block := rng.Intn(256)
			word := rng.Intn(8)
			addr := uint64(block*32 + word*4)
			if c.Read(addr).Hit {
				hits++
			}
			total++
		}
		return float64(hits) / float64(total)
	}
	wdis := run(func(fm *faultmap.Map, n *core.NextLevel) core.DataCache {
		s, _ := NewSimpleWdis(fm, n)
		return s
	})
	fbaPlus := run(func(fm *faultmap.Map, n *core.NextLevel) core.DataCache {
		f, _ := NewFBA(fm, n, 1024)
		return f
	})
	idcPlus := run(func(fm *faultmap.Map, n *core.NextLevel) core.DataCache {
		c, _ := NewIDC(fm, n, 1024)
		return c
	})
	fba64 := run(func(fm *faultmap.Map, n *core.NextLevel) core.DataCache {
		f, _ := NewFBA(fm, n, 64)
		return f
	})
	if !(fbaPlus > wdis+0.1) {
		t.Errorf("FBA+ (%.3f) should beat Simple-wdis (%.3f) clearly at 400mV", fbaPlus, wdis)
	}
	if !(fbaPlus >= fba64) {
		t.Errorf("FBA+ (%.3f) should be >= FBA-64 (%.3f)", fbaPlus, fba64)
	}
	if math.Abs(fbaPlus-idcPlus) > 0.15 {
		t.Errorf("FBA+ (%.3f) and IDC+ (%.3f) should be broadly similar", fbaPlus, idcPlus)
	}
}

func TestWritePathsAcrossSchemes(t *testing.T) {
	// The write-through semantics are identical across the family: a miss
	// buffers the store without allocating; a resident fault-free word
	// hits; fetch shares the read path.
	builds := map[string]func(*core.NextLevel) core.DataCache{
		"wdis": func(n *core.NextLevel) core.DataCache {
			s, err := NewSimpleWdis(cleanMap(), n)
			if err != nil {
				t.Fatal(err)
			}
			return s
		},
		"wilkerson": func(n *core.NextLevel) core.DataCache {
			s, err := NewWilkersonPlus(cleanMap(), n)
			if err != nil {
				t.Fatal(err)
			}
			return s
		},
		"fba": func(n *core.NextLevel) core.DataCache {
			s, err := NewFBA(cleanMap(), n, 64)
			if err != nil {
				t.Fatal(err)
			}
			return s
		},
		"idc": func(n *core.NextLevel) core.DataCache {
			s, err := NewIDC(cleanMap(), n, 64)
			if err != nil {
				t.Fatal(err)
			}
			return s
		},
	}
	for name, build := range builds {
		t.Run(name, func(t *testing.T) {
			n := core.NewNextLevel(100)
			c := build(n)
			if out := c.Write(0x40); out.Hit {
				t.Error("write miss must not hit (no write allocate)")
			}
			if n.WordWrites() != 1 {
				t.Errorf("WordWrites = %d, want 1", n.WordWrites())
			}
			c.Read(0x40)
			if out := c.Write(0x44); !out.Hit {
				t.Error("write to resident fault-free word should hit")
			}
			ic, ok := c.(core.InstrCache)
			if !ok {
				t.Fatal("scheme must also serve as an instruction cache")
			}
			if out := ic.Fetch(0x40); !out.Hit {
				t.Error("fetch should share the read path")
			}
		})
	}
}

func TestWriteToBufferedDefectiveWord(t *testing.T) {
	// FBA/IDC: a store to a buffered defective word updates it in place
	// (hit); an unbuffered one bypasses.
	cfg := cache.L1Config("x")
	mk := func() *faultmap.Map {
		fm := cleanMap()
		for way := 0; way < 4; way++ {
			fm.SetDefective(cfg.FrameWordIndex(0, way, 1), true)
		}
		return fm
	}
	n := next(t)
	f, _ := NewFBA(mk(), n, 64)
	addr := uint64(4) // set 0 word 1: defective
	if out := f.Write(addr); out.Hit {
		t.Error("store to unbuffered defective word must not hit")
	}
	f.Read(addr) // tag fill + buffer fill
	f.Read(addr) // buffer hit
	if out := f.Write(addr); !out.Hit {
		t.Error("store to buffered defective word should hit")
	}
	n2 := next(t)
	c, _ := NewIDC(mk(), n2, 64)
	c.Read(addr)
	c.Read(addr)
	if out := c.Write(addr); !out.Hit {
		t.Error("IDC store to buffered defective word should hit")
	}
}

func TestSchemeStatsAccessors(t *testing.T) {
	n := next(t)
	p := NewDefectFree(n)
	p.Read(0)
	if p.Stats().Reads != 1 {
		t.Error("Plain.Stats not wired")
	}
	s, _ := NewSimpleWdis(cleanMap(), n)
	if s.Name() != "Simple-wdis" {
		t.Errorf("Name = %q", s.Name())
	}
	s.Read(0)
	if s.Stats().Accesses != 1 {
		t.Error("SimpleWdis.Stats not wired")
	}
	w, _ := NewWilkersonPlus(cleanMap(), n)
	w.Read(0)
	if w.Stats().Accesses != 1 {
		t.Error("Wilkerson.Stats not wired")
	}
	c, _ := NewIDC(cleanMap(), n, 64)
	c.Read(0)
	if c.Stats().Accesses != 1 {
		t.Error("IDC.Stats not wired")
	}
}

func TestConstructorNilNextLevel(t *testing.T) {
	if _, err := NewSimpleWdis(cleanMap(), nil); err == nil {
		t.Error("wdis nil next must fail")
	}
	if _, err := NewWilkersonPlus(cleanMap(), nil); err == nil {
		t.Error("wilkerson nil next must fail")
	}
	if _, err := NewFBA(cleanMap(), nil, 64); err == nil {
		t.Error("fba nil next must fail")
	}
	if _, err := NewIDC(cleanMap(), nil, 64); err == nil {
		t.Error("idc nil next must fail")
	}
	if _, err := NewWilkersonPlus(faultmap.New(8), next(t)); err == nil {
		t.Error("wilkerson wrong-size map must fail")
	}
	defer func() {
		if recover() == nil {
			t.Error("Plain with nil next should panic")
		}
	}()
	NewDefectFree(nil)
}

func TestWordEntryDefective(t *testing.T) {
	cfg := cache.L1Config("x")
	fm := cleanMap()
	fm.SetDefective(cfg.FrameWordIndex(3, 2, 5), true)
	addr := uint64(3*32 + 5*4) // set 3, word 5
	if !WordEntryDefective(fm, cfg, addr, 2) {
		t.Error("defective entry not reported")
	}
	if WordEntryDefective(fm, cfg, addr, 1) {
		t.Error("clean way reported defective")
	}
}
