package schemes

import (
	"math/rand"
	"testing"

	"repro/internal/cache"
	"repro/internal/faultmap"
)

func TestBitFixBasics(t *testing.T) {
	b, err := NewBitFix(cleanMap(), next(t))
	if err != nil {
		t.Fatal(err)
	}
	if b.Name() != "Bit-fix" || b.HitLatency() != 3 {
		t.Errorf("name=%q lat=%d", b.Name(), b.HitLatency())
	}
	b.Read(0x40)
	if out := b.Read(0x40); !out.Hit || out.Latency != 3 {
		t.Errorf("warm read = %+v", out)
	}
	if out := b.Fetch(0x40); !out.Hit {
		t.Error("fetch shares the read path")
	}
}

func TestBitFixRejectsBadInputs(t *testing.T) {
	if _, err := NewBitFix(faultmap.New(8), next(t)); err == nil {
		t.Error("wrong-size map must fail")
	}
	if _, err := NewBitFix(cleanMap(), nil); err == nil {
		t.Error("nil next must fail")
	}
}

func TestBitFixQuarterCapacitySacrificed(t *testing.T) {
	// Only 3 data ways per set: the fourth distinct block evicts.
	b, _ := NewBitFix(cleanMap(), next(t))
	stride := uint64(256 * 32)
	for i := uint64(0); i < 3; i++ {
		b.Read(i * stride)
	}
	b.Read(0) // block 0 MRU
	b.Read(3 * stride)
	if out := b.Read(0); !out.Hit {
		t.Error("MRU block evicted")
	}
	if out := b.Read(stride); out.Hit {
		t.Error("LRU block should have been evicted (capacity 75%)")
	}
}

func TestBitFixRepairsUpToBudget(t *testing.T) {
	cfg := cache.L1Config("x")
	fm := cleanMap()
	// Frame (0,0): exactly 2 defective words -> fully repaired.
	fm.SetDefective(cfg.FrameWordIndex(0, 0, 1), true)
	fm.SetDefective(cfg.FrameWordIndex(0, 0, 5), true)
	b, _ := NewBitFix(fm, next(t))
	// Occupy only frame 0 (one block) and touch the repaired words.
	b.Read(0x04)
	if out := b.Read(0x04); !out.Hit {
		t.Error("repaired word 1 should hit")
	}
	if out := b.Read(0x14); !out.Hit {
		t.Error("repaired word 5 should hit")
	}
}

func TestBitFixBudgetExceededActsLikeWdis(t *testing.T) {
	cfg := cache.L1Config("x")
	fm := cleanMap()
	// Three defective words in every data way of set 0: one word per
	// frame stays broken after the 2-word repair budget.
	for w := 0; w < 3; w++ {
		for _, word := range []int{1, 3, 6} {
			fm.SetDefective(cfg.FrameWordIndex(0, w, word), true)
		}
	}
	n := next(t)
	b, _ := NewBitFix(fm, n)
	// repairMask clears the two lowest defective words (1, 3); word 6
	// stays defective in every frame.
	addr := uint64(6 * 4)
	b.Read(addr)
	for i := 0; i < 3; i++ {
		if out := b.Read(addr); out.Hit {
			t.Fatal("word beyond the repair budget must always miss")
		}
	}
	if out := b.Read(uint64(1 * 4)); !out.Hit {
		t.Error("repaired word 1 should hit")
	}
	if out := b.Read(uint64(3 * 4)); !out.Hit {
		t.Error("repaired word 3 should hit")
	}
}

func TestRepairMask(t *testing.T) {
	tests := []struct {
		fault   uint8
		repairs int
		want    uint8
	}{
		{0, 2, 0},
		{0b00000110, 2, 0},          // both repaired
		{0b01001010, 2, 0b01000000}, // lowest two repaired
		{0b11111111, 2, 0b11111100},
		{0b10000000, 0, 0b10000000},
	}
	for _, tt := range tests {
		if got := repairMask(tt.fault, tt.repairs); got != tt.want {
			t.Errorf("repairMask(%08b, %d) = %08b, want %08b", tt.fault, tt.repairs, got, tt.want)
		}
	}
}

func TestCoverableBitFixVoltageWall(t *testing.T) {
	// The paper: bit-fix holds to ~500 mV. Our model: at 520 mV
	// (p=1e-3.5) frames rarely exceed 2 defective words; at 400 mV
	// (p=1e-2, mean 2.2 defective words/frame) they almost always do.
	if !CoverableBitFix(cleanMap()) {
		t.Error("clean map must be coverable")
	}
	if CoverableBitFix(faultmap.New(8)) {
		t.Error("wrong-size map must not be coverable")
	}
	covered520 := 0
	for seed := int64(0); seed < 20; seed++ {
		fm := faultmap.Generate(l1Words, 3.16e-4, rand.New(rand.NewSource(seed))) // 520 mV
		if CoverableBitFix(fm) {
			covered520++
		}
	}
	if covered520 < 15 {
		t.Errorf("bit-fix covered only %d/20 dies at 520mV, want most", covered520)
	}
	for seed := int64(0); seed < 5; seed++ {
		if CoverableBitFix(mapAt400(seed)) {
			t.Error("bit-fix must not cover 400mV maps")
		}
	}
}
