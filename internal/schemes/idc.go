package schemes

import (
	"errors"
	"math/bits"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/faultmap"
)

// IDC is the Inquisitive Defect Cache [21]: like the FBA it backs a
// word-disable main array with an auxiliary store for in-use defective
// words, but the auxiliary structure is a set-associative cache rather
// than a CAM, so its effectiveness is bounded by both capacity and the
// feasible associativity (conflicts evict live words). One extra cycle on
// the L1 path (Table III). The paper evaluates 64 entries (IDC) and an
// optimistic 1024 entries (IDC⁺).
type IDC struct {
	name string
	m    *maskedCache
	next *core.NextLevel

	assoc int
	sets  int
	tags  [][]idcEntry
	tick  uint64

	stats FBAStats // same event shape as the FBA
}

type idcEntry struct {
	wordAddr uint64
	valid    bool
	lru      uint64
}

// IDCAssoc is the auxiliary cache's associativity.
const IDCAssoc = 4

// NewIDC builds the scheme with the given total entry count, which must
// be a power-of-two multiple of the associativity.
func NewIDC(fm *faultmap.Map, next *core.NextLevel, entries int) (*IDC, error) {
	if entries < IDCAssoc {
		return nil, errors.New("schemes: IDC needs >= one set of entries")
	}
	sets := entries / IDCAssoc
	if sets*IDCAssoc != entries || bits.OnesCount(uint(sets)) != 1 {
		return nil, errors.New("schemes: IDC entries must be a power-of-two multiple of the associativity")
	}
	m, err := newMaskedCache("L1-idc", fm)
	if err != nil {
		return nil, err
	}
	if next == nil {
		return nil, errNilNext
	}
	name := "IDC"
	if entries >= 1024 {
		name = "IDC+"
	}
	idc := &IDC{name: name, m: m, next: next, assoc: IDCAssoc, sets: sets}
	idc.tags = make([][]idcEntry, sets)
	backing := make([]idcEntry, entries)
	for s := range idc.tags {
		idc.tags[s], backing = backing[:IDCAssoc], backing[IDCAssoc:]
	}
	return idc, nil
}

// Name implements core.DataCache/core.InstrCache.
func (c *IDC) Name() string { return c.name }

// HitLatency implements core.DataCache/core.InstrCache.
func (c *IDC) HitLatency() int { return c.m.cfg.HitLatency + 1 }

// Stats returns the scheme's counters.
func (c *IDC) Stats() FBAStats { return c.stats }

func (c *IDC) auxSet(wordAddr uint64) int { return int(wordAddr % uint64(c.sets)) }

func (c *IDC) auxHit(wordAddr uint64) bool {
	c.tick++
	set := c.tags[c.auxSet(wordAddr)]
	for i := range set {
		if set[i].valid && set[i].wordAddr == wordAddr {
			set[i].lru = c.tick
			return true
		}
	}
	return false
}

func (c *IDC) auxFill(wordAddr uint64) {
	c.tick++
	set := c.tags[c.auxSet(wordAddr)]
	best, bestLRU := 0, ^uint64(0)
	for i := range set {
		if !set[i].valid {
			best = i
			break
		}
		if set[i].lru < bestLRU {
			best, bestLRU = i, set[i].lru
		}
	}
	if set[best].valid {
		c.stats.Evictions++
	}
	set[best] = idcEntry{wordAddr: wordAddr, valid: true, lru: c.tick}
	c.stats.BufferFills++
}

// Read implements core.DataCache.
func (c *IDC) Read(addr uint64) core.AccessOutcome {
	c.stats.Accesses++
	r := c.m.access(addr, true)
	if r.wordOK {
		if r.tagHit {
			c.stats.MainHits++
			return core.HitOutcome(c.HitLatency())
		}
		c.stats.TagMisses++
		return core.MissOutcome(c.HitLatency(), c.next, addr)
	}
	c.stats.DefectAccesses++
	if !r.tagHit {
		c.stats.TagMisses++
	}
	if c.auxHit(cache.WordAddr(addr)) {
		c.stats.BufferHits++
		return core.HitOutcome(c.HitLatency())
	}
	out := core.MissOutcome(c.HitLatency(), c.next, addr)
	c.auxFill(cache.WordAddr(addr))
	return out
}

// Write implements core.DataCache.
func (c *IDC) Write(addr uint64) core.AccessOutcome {
	c.next.WriteWord(addr)
	r := c.m.access(addr, false)
	if r.tagHit && r.wordOK {
		return core.HitOutcome(c.HitLatency())
	}
	if r.tagHit && c.auxHit(cache.WordAddr(addr)) {
		return core.HitOutcome(c.HitLatency())
	}
	return core.AccessOutcome{Latency: c.HitLatency()}
}

// Fetch implements core.InstrCache.
func (c *IDC) Fetch(addr uint64) core.AccessOutcome { return c.Read(addr) }
