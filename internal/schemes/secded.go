package schemes

import (
	"repro/internal/core"
	"repro/internal/faultmap"
)

// SECDED is the error-correcting-code baseline from the paper's related
// work (Section III-B): every 32-bit word carries a (39,32) SECDED code.
// A single hard-failed bit per word is corrected in-line; words with two
// or more failed bits are uncorrectable and must be disabled — accesses
// to them are L2 trips, exactly like simple word disable. The correction
// stage adds one cycle to the hit path, and the check bits cost ~22%
// array area.
//
// The paper's argument against this class — "with aggressive voltage
// scaling, multi-bit errors become increasingly likely and quickly
// overwhelm the capability of ECC" — is directly measurable here: the
// residual (≥2-bit) word defect rate is ~5e-6 at 560 mV but 4.1% at
// 400 mV, so SECDED behaves like an always-one-cycle-slower cache at
// moderate voltage and degrades toward word-disable behaviour at 400 mV.
//
// Construct with NewSECDED, passing the *multi-bit* fault map from
// faultmap.GenerateSECDED (not the raw word map).
type SECDED struct {
	m    *maskedCache
	next *core.NextLevel

	stats WdisStats
}

// NewSECDED builds the scheme over the multi-bit (uncorrectable-word)
// fault map.
func NewSECDED(multibit *faultmap.Map, next *core.NextLevel) (*SECDED, error) {
	m, err := newMaskedCache("L1-secded", multibit)
	if err != nil {
		return nil, err
	}
	if next == nil {
		return nil, errNilNext
	}
	return &SECDED{m: m, next: next}, nil
}

// Name implements core.DataCache/core.InstrCache.
func (s *SECDED) Name() string { return "SECDED" }

// HitLatency implements core.DataCache/core.InstrCache: one extra cycle
// for the correction stage.
func (s *SECDED) HitLatency() int { return s.m.cfg.HitLatency + 1 }

// Stats returns the scheme's counters.
func (s *SECDED) Stats() WdisStats { return s.stats }

// Read implements core.DataCache.
func (s *SECDED) Read(addr uint64) core.AccessOutcome {
	s.stats.Accesses++
	r := s.m.access(addr, true)
	switch {
	case r.tagHit && r.wordOK:
		s.stats.Hits++
		return core.HitOutcome(s.HitLatency())
	case !r.tagHit:
		s.stats.TagMisses++
		if !r.wordOK {
			s.stats.DefectMisses++
		}
		return core.MissOutcome(s.HitLatency(), s.next, addr)
	default:
		// Uncorrectable word: every access is an L2 trip.
		s.stats.DefectMisses++
		return core.MissOutcome(s.HitLatency(), s.next, addr)
	}
}

// Write implements core.DataCache: write-through, no write allocate.
func (s *SECDED) Write(addr uint64) core.AccessOutcome {
	s.next.WriteWord(addr)
	r := s.m.access(addr, false)
	if r.tagHit && r.wordOK {
		return core.HitOutcome(s.HitLatency())
	}
	return core.AccessOutcome{Latency: s.HitLatency()}
}

// Fetch implements core.InstrCache.
func (s *SECDED) Fetch(addr uint64) core.AccessOutcome { return s.Read(addr) }

var (
	_ core.DataCache  = (*SECDED)(nil)
	_ core.InstrCache = (*SECDED)(nil)
)
