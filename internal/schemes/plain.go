// Package schemes implements the comparison L1 fault-tolerance schemes of
// the paper's evaluation (Section V/VI): the ideal defect-free cache, the
// robust 8T-cell cache, Simple word disable [2], Wilkerson's word disable
// [4] (with the simple-wdis supplement, "Wilkerson+"), the Fault Buffer
// Array [2] and the Inquisitive Defect Cache [21]. The paper's own
// proposals live in packages ffw and bbr.
//
// Every scheme implements core.DataCache and core.InstrCache over the
// same 32 KB/4-way L1 geometry; the simulation layer instantiates one
// copy per cache with that cache's fault map.
package schemes

import (
	"repro/internal/cache"
	"repro/internal/core"
)

// Plain is a defect-oblivious cache: the ideal defect-free baseline
// (extra latency 0) and the robust 8T-cell cache (extra latency 1 — the
// paper grants 8T one extra cycle because its 28% larger array stretches
// wire-dominated paths). Plain caches have no defective words by
// construction: the baseline because it is ideal, the 8T because its
// cells hold to 400 mV.
type Plain struct {
	name string
	c    *cache.Cache
	next *core.NextLevel
	lat  int
}

// NewDefectFree returns the unrealistic defect-free baseline the paper
// normalizes runtime against.
func NewDefectFree(next *core.NextLevel) *Plain {
	return newPlain("DefectFree", next, 0)
}

// NewConventional returns the conventional 6T cache — identical to the
// defect-free cache but only operable at Vccmin (760 mV); it is the
// energy baseline.
func NewConventional(next *core.NextLevel) *Plain {
	return newPlain("Conventional", next, 0)
}

// New8T returns the 8T-cell cache: reliable at every evaluated voltage,
// one extra cycle of hit latency, 28% more area (Table III).
func New8T(next *core.NextLevel) *Plain {
	return newPlain("8T", next, 1)
}

func newPlain(name string, next *core.NextLevel, extraLatency int) *Plain {
	if next == nil {
		//lvlint:ignore nopanic nil-receiver wiring bug caught at construction, like cache.MustNew below
		panic("schemes: nil next level")
	}
	return &Plain{
		name: name,
		c:    cache.MustNew(cache.L1Config("L1-" + name)),
		next: next,
		lat:  cache.L1Config("").HitLatency + extraLatency,
	}
}

// Name implements core.DataCache/core.InstrCache.
func (p *Plain) Name() string { return p.name }

// HitLatency implements core.DataCache/core.InstrCache.
func (p *Plain) HitLatency() int { return p.lat }

// Stats exposes the underlying counters.
func (p *Plain) Stats() cache.Stats { return p.c.Stats() }

// Read implements core.DataCache.
func (p *Plain) Read(addr uint64) core.AccessOutcome {
	if p.c.Access(addr, false).Hit {
		return core.HitOutcome(p.lat)
	}
	return core.MissOutcome(p.lat, p.next, addr)
}

// Write implements core.DataCache (write-through, no write allocate).
func (p *Plain) Write(addr uint64) core.AccessOutcome {
	p.next.WriteWord(addr)
	if p.c.Access(addr, true).Hit {
		return core.HitOutcome(p.lat)
	}
	return core.AccessOutcome{Latency: p.lat}
}

// Fetch implements core.InstrCache.
func (p *Plain) Fetch(addr uint64) core.AccessOutcome { return p.Read(addr) }
