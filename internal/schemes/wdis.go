package schemes

import (
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/faultmap"
)

// SimpleWdis is simple word disable ([2], the paper's Simple-wdis):
// defective words are never stored; an access to a word whose entry is
// defective is treated like a normal cache miss and served by the L2,
// every time. No extra latency (Table III), no substitution storage —
// the cheapest scheme, and the one that collapses when defects become
// dense (Figure 10 beyond 480 mV).
type SimpleWdis struct {
	name string
	m    *maskedCache
	next *core.NextLevel

	stats WdisStats
}

// WdisStats counts word-disable events.
type WdisStats struct {
	Accesses     uint64
	Hits         uint64
	TagMisses    uint64
	DefectMisses uint64 // accesses whose word entry was defective
}

// NewSimpleWdis builds the scheme over the cache's fault map.
func NewSimpleWdis(fm *faultmap.Map, next *core.NextLevel) (*SimpleWdis, error) {
	m, err := newMaskedCache("L1-wdis", fm)
	if err != nil {
		return nil, err
	}
	if next == nil {
		return nil, errNilNext
	}
	return &SimpleWdis{name: "Simple-wdis", m: m, next: next}, nil
}

// Name implements core.DataCache/core.InstrCache.
func (s *SimpleWdis) Name() string { return s.name }

// HitLatency implements core.DataCache/core.InstrCache: zero overhead.
func (s *SimpleWdis) HitLatency() int { return s.m.cfg.HitLatency }

// Stats returns the scheme's counters.
func (s *SimpleWdis) Stats() WdisStats { return s.stats }

// Read implements core.DataCache.
func (s *SimpleWdis) Read(addr uint64) core.AccessOutcome {
	s.stats.Accesses++
	r := s.m.access(addr, true)
	switch {
	case r.tagHit && r.wordOK:
		s.stats.Hits++
		return core.HitOutcome(s.HitLatency())
	case !r.tagHit:
		s.stats.TagMisses++
		if !r.wordOK {
			s.stats.DefectMisses++
		}
		return core.MissOutcome(s.HitLatency(), s.next, addr)
	default:
		// Tag hit on a defective word entry: always an L2 trip.
		s.stats.DefectMisses++
		return core.MissOutcome(s.HitLatency(), s.next, addr)
	}
}

// Write implements core.DataCache: write-through, no write allocate.
func (s *SimpleWdis) Write(addr uint64) core.AccessOutcome {
	s.next.WriteWord(addr)
	r := s.m.access(addr, false)
	if r.tagHit && r.wordOK {
		return core.HitOutcome(s.HitLatency())
	}
	return core.AccessOutcome{Latency: s.HitLatency()}
}

// Fetch implements core.InstrCache.
func (s *SimpleWdis) Fetch(addr uint64) core.AccessOutcome { return s.Read(addr) }

// errNilNext is shared by scheme constructors.
var errNilNext = errNilNextLevel{}

type errNilNextLevel struct{}

func (errNilNextLevel) Error() string { return "schemes: nil next level" }

// WordEntryDefective reports whether the physical entry that addr maps to
// in frame (set, way) coordinates is defective — a helper for tests and
// the yield analysis.
func WordEntryDefective(fm *faultmap.Map, cfg cache.Config, addr uint64, way int) bool {
	set := cfg.Index(addr)
	return fm.Defective(cfg.FrameWordIndex(set, way, cache.WordInBlock(addr)))
}
