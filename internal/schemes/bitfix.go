package schemes

import (
	"math/bits"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/faultmap"
)

// BitFix adapts Wilkerson's bit-fix scheme [4] to this simulator's word
// granularity: one way per set (a quarter of the cache) is sacrificed to
// store repair patterns for the other three, and each remaining frame can
// have up to BitFixRepairsPerFrame of its defective words patched by
// those entries. The fix-up multiplexing costs one extra cycle, capacity
// drops to 75%, and — the paper's point in §III — the repair budget that
// comfortably covers the defect density at 500 mV is swamped at 400 mV,
// where frames average 2.2 defective words and the unrepaired excess
// behaves like simple word disable.
type BitFix struct {
	cfg  cache.Config
	next *core.NextLevel
	sets [][]mline // Sets() x (Ways-1) data frames
	tick uint64

	stats WdisStats
}

// BitFixRepairsPerFrame is each data frame's repair budget: the fix way's
// eight words, with position tags and valid bits, cover about two
// repaired words for each of its three client frames.
const BitFixRepairsPerFrame = 2

// NewBitFix builds the scheme over the fault map. The fix way is way 3 of
// each set; its own defects reduce nothing further (repair entries are
// small and protected like tag state in the original design).
func NewBitFix(fm *faultmap.Map, next *core.NextLevel) (*BitFix, error) {
	cfg := cache.L1Config("L1-bitfix")
	if fm.Words() != cfg.Words() {
		return nil, errMapSize(fm.Words(), cfg.Words())
	}
	if next == nil {
		return nil, errNilNext
	}
	b := &BitFix{cfg: cfg, next: next}
	dataWays := cfg.Ways - 1
	b.sets = make([][]mline, cfg.Sets())
	lines := make([]mline, cfg.Sets()*dataWays)
	for s := range b.sets {
		b.sets[s], lines = lines[:dataWays], lines[dataWays:]
	}
	for s := 0; s < cfg.Sets(); s++ {
		for w := 0; w < dataWays; w++ {
			mask := fm.BlockMask(s*cfg.Ways + w)
			b.sets[s][w].fault = repairMask(mask, BitFixRepairsPerFrame)
		}
	}
	return b, nil
}

// repairMask clears the lowest `repairs` set bits of the fault mask —
// those words are patched by the fix way and behave fault-free.
func repairMask(fault uint8, repairs int) uint8 {
	for i := 0; i < repairs && fault != 0; i++ {
		fault &= fault - 1 // clear lowest set bit
	}
	return fault
}

// CoverableBitFix reports whether plain bit-fix (no word-disable
// fallback) covers the fault map: every data frame must have at most
// BitFixRepairsPerFrame defective words. This is the yield criterion
// behind the paper's "reduce Vccmin to 500mV" for bit-fix.
func CoverableBitFix(fm *faultmap.Map) bool {
	cfg := cache.L1Config("L1-bitfix")
	if fm.Words() != cfg.Words() {
		return false
	}
	for s := 0; s < cfg.Sets(); s++ {
		for w := 0; w < cfg.Ways-1; w++ {
			if bits.OnesCount8(fm.BlockMask(s*cfg.Ways+w)) > BitFixRepairsPerFrame {
				return false
			}
		}
	}
	return true
}

// Name implements core.DataCache/core.InstrCache.
func (b *BitFix) Name() string { return "Bit-fix" }

// HitLatency implements core.DataCache/core.InstrCache: +1 cycle for the
// fix-up multiplexers.
func (b *BitFix) HitLatency() int { return b.cfg.HitLatency + 1 }

// Stats returns the scheme's counters.
func (b *BitFix) Stats() WdisStats { return b.stats }

func (b *BitFix) lookup(addr uint64, allocate bool) lookupResult {
	b.tick++
	set := b.cfg.Index(addr)
	tag := b.cfg.Tag(addr)
	word := cache.WordInBlock(addr)
	for w := range b.sets[set] {
		l := &b.sets[set][w]
		if l.valid && l.tag == tag {
			l.lru = b.tick
			return lookupResult{tagHit: true, wordOK: l.fault&(1<<uint(word)) == 0}
		}
	}
	if !allocate {
		return lookupResult{}
	}
	best, bestLRU := 0, ^uint64(0)
	for w := range b.sets[set] {
		l := &b.sets[set][w]
		if !l.valid {
			best = w
			break
		}
		if l.lru < bestLRU {
			best, bestLRU = w, l.lru
		}
	}
	l := &b.sets[set][best]
	*l = mline{tag: tag, valid: true, lru: b.tick, fault: l.fault}
	return lookupResult{filled: true, wordOK: l.fault&(1<<uint(word)) == 0}
}

// Read implements core.DataCache.
func (b *BitFix) Read(addr uint64) core.AccessOutcome {
	b.stats.Accesses++
	r := b.lookup(addr, true)
	if r.tagHit && r.wordOK {
		b.stats.Hits++
		return core.HitOutcome(b.HitLatency())
	}
	if !r.tagHit {
		b.stats.TagMisses++
	}
	if !r.wordOK {
		b.stats.DefectMisses++
	}
	return core.MissOutcome(b.HitLatency(), b.next, addr)
}

// Write implements core.DataCache.
func (b *BitFix) Write(addr uint64) core.AccessOutcome {
	b.next.WriteWord(addr)
	r := b.lookup(addr, false)
	if r.tagHit && r.wordOK {
		return core.HitOutcome(b.HitLatency())
	}
	return core.AccessOutcome{Latency: b.HitLatency()}
}

// Fetch implements core.InstrCache.
func (b *BitFix) Fetch(addr uint64) core.AccessOutcome { return b.Read(addr) }
