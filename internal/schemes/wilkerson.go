package schemes

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/faultmap"
)

// Wilkerson implements Wilkerson's word-disable scheme [4]: two
// consecutive physical frames combine into one logical line, each word
// slot served by whichever of the two frames has that entry fault-free.
// Capacity and associativity are halved (4-way/32 KB becomes effectively
// 2-way/16 KB) and the combining multiplexers cost one extra cycle
// (Table III).
//
// A logical slot is defective only when *both* physical entries fail.
// Plain word-disable requires every logical slot in the cache to be
// usable — which stops yielding below ~480 mV (the paper's Fig. 10 note);
// the evaluated variant is Wilkerson⁺, which falls back to simple word
// disable (an L2 trip per access) on residual defective slots.
type Wilkerson struct {
	cfg  cache.Config
	next *core.NextLevel
	sets [][]wline // Sets() x (Ways/2) logical lines
	tick uint64

	stats WdisStats
}

type wline struct {
	tag   uint64
	valid bool
	lru   uint64
	fault uint8 // logical slot defective: both physical entries failed
}

// NewWilkersonPlus builds the Wilkerson⁺ cache over the fault map.
func NewWilkersonPlus(fm *faultmap.Map, next *core.NextLevel) (*Wilkerson, error) {
	cfg := cache.L1Config("L1-wilkerson")
	if fm.Words() != cfg.Words() {
		return nil, errMapSize(fm.Words(), cfg.Words())
	}
	if next == nil {
		return nil, errNilNext
	}
	w := &Wilkerson{cfg: cfg, next: next}
	logical := cfg.Ways / 2
	w.sets = make([][]wline, cfg.Sets())
	lines := make([]wline, cfg.Sets()*logical)
	for s := range w.sets {
		w.sets[s], lines = lines[:logical], lines[logical:]
	}
	for s := 0; s < cfg.Sets(); s++ {
		for l := 0; l < logical; l++ {
			a := fm.BlockMask(s*cfg.Ways + 2*l)
			b := fm.BlockMask(s*cfg.Ways + 2*l + 1)
			w.sets[s][l].fault = a & b
		}
	}
	return w, nil
}

// Coverable reports whether plain Wilkerson word-disable (without the
// simple-wdis supplement) can guarantee architecturally correct execution
// on this fault map: no logical slot may be defective. This is the yield
// criterion behind the paper's "Wilkerson cannot achieve 99.9% chip yield
// below 480mV".
func Coverable(fm *faultmap.Map) bool {
	cfg := cache.L1Config("L1-wilkerson")
	if fm.Words() != cfg.Words() {
		return false
	}
	for s := 0; s < cfg.Sets(); s++ {
		for l := 0; l < cfg.Ways/2; l++ {
			a := fm.BlockMask(s*cfg.Ways + 2*l)
			b := fm.BlockMask(s*cfg.Ways + 2*l + 1)
			if a&b != 0 {
				return false
			}
		}
	}
	return true
}

// Name implements core.DataCache/core.InstrCache.
func (w *Wilkerson) Name() string { return "Wilkerson+" }

// HitLatency implements core.DataCache/core.InstrCache: one extra cycle
// for the word-combining multiplexers.
func (w *Wilkerson) HitLatency() int { return w.cfg.HitLatency + 1 }

// Stats returns the scheme's counters.
func (w *Wilkerson) Stats() WdisStats { return w.stats }

func (w *Wilkerson) lookup(addr uint64, allocate bool) lookupResult {
	w.tick++
	set := w.cfg.Index(addr)
	tag := w.cfg.Tag(addr)
	word := cache.WordInBlock(addr)
	for l := range w.sets[set] {
		ln := &w.sets[set][l]
		if ln.valid && ln.tag == tag {
			ln.lru = w.tick
			return lookupResult{tagHit: true, wordOK: ln.fault&(1<<uint(word)) == 0}
		}
	}
	if !allocate {
		return lookupResult{}
	}
	best, bestLRU := 0, ^uint64(0)
	for l := range w.sets[set] {
		ln := &w.sets[set][l]
		if !ln.valid {
			best = l
			break
		}
		if ln.lru < bestLRU {
			best, bestLRU = l, ln.lru
		}
	}
	ln := &w.sets[set][best]
	*ln = wline{tag: tag, valid: true, lru: w.tick, fault: ln.fault}
	return lookupResult{filled: true, wordOK: ln.fault&(1<<uint(word)) == 0}
}

// Read implements core.DataCache.
func (w *Wilkerson) Read(addr uint64) core.AccessOutcome {
	w.stats.Accesses++
	r := w.lookup(addr, true)
	if r.tagHit && r.wordOK {
		w.stats.Hits++
		return core.HitOutcome(w.HitLatency())
	}
	if !r.tagHit {
		w.stats.TagMisses++
	}
	if !r.wordOK {
		w.stats.DefectMisses++
	}
	return core.MissOutcome(w.HitLatency(), w.next, addr)
}

// Write implements core.DataCache.
func (w *Wilkerson) Write(addr uint64) core.AccessOutcome {
	w.next.WriteWord(addr)
	r := w.lookup(addr, false)
	if r.tagHit && r.wordOK {
		return core.HitOutcome(w.HitLatency())
	}
	return core.AccessOutcome{Latency: w.HitLatency()}
}

// Fetch implements core.InstrCache.
func (w *Wilkerson) Fetch(addr uint64) core.AccessOutcome { return w.Read(addr) }

func errMapSize(got, want int) error {
	return fmt.Errorf("schemes: fault map covers %d words, cache has %d", got, want)
}
