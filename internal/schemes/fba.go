package schemes

import (
	"container/list"
	"errors"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/faultmap"
)

// FBA is the Fault Buffer Array [2]: the main L1 runs word-disable, and a
// small fully-associative, word-location-tagged buffer holds the values
// of defective words currently in use. An access whose word entry is
// defective is redirected to the FBA; an FBA miss is handled like a
// normal cache miss (an L2 trip) and allocates the word into the buffer.
// The content-addressable lookup costs one extra cycle on the L1 path
// (Table III). The paper evaluates 64 entries as realistic and grants
// 1024 entries to the optimistic FBA⁺.
type FBA struct {
	name string
	m    *maskedCache
	next *core.NextLevel

	lru     *list.List // front = MRU; values are word addresses
	entries map[uint64]*list.Element
	cap     int

	stats FBAStats
}

// FBAStats counts buffer events.
type FBAStats struct {
	Accesses       uint64
	MainHits       uint64
	TagMisses      uint64
	DefectAccesses uint64 // accesses redirected to the buffer
	BufferHits     uint64
	BufferFills    uint64
	Evictions      uint64
}

// NewFBA builds the scheme with the given buffer capacity (64 for the
// paper's realistic configuration, 1024 for FBA⁺).
func NewFBA(fm *faultmap.Map, next *core.NextLevel, entries int) (*FBA, error) {
	if entries < 1 {
		return nil, errors.New("schemes: FBA needs >= 1 entry")
	}
	m, err := newMaskedCache("L1-fba", fm)
	if err != nil {
		return nil, err
	}
	if next == nil {
		return nil, errNilNext
	}
	name := "FBA"
	if entries >= 1024 {
		name = "FBA+"
	}
	return &FBA{
		name: name, m: m, next: next,
		lru: list.New(), entries: make(map[uint64]*list.Element, entries), cap: entries,
	}, nil
}

// Name implements core.DataCache/core.InstrCache.
func (f *FBA) Name() string { return f.name }

// HitLatency implements core.DataCache/core.InstrCache: +1 cycle for the
// CAM lookup.
func (f *FBA) HitLatency() int { return f.m.cfg.HitLatency + 1 }

// Stats returns the scheme's counters.
func (f *FBA) Stats() FBAStats { return f.stats }

// Entries returns the current buffer occupancy.
func (f *FBA) Entries() int { return len(f.entries) }

// bufferHit probes the buffer, refreshing LRU order on a hit.
func (f *FBA) bufferHit(wordAddr uint64) bool {
	if e, ok := f.entries[wordAddr]; ok {
		f.lru.MoveToFront(e)
		return true
	}
	return false
}

// bufferFill installs a word, evicting the LRU entry at capacity.
func (f *FBA) bufferFill(wordAddr uint64) {
	if _, ok := f.entries[wordAddr]; ok {
		return
	}
	if len(f.entries) >= f.cap {
		back := f.lru.Back()
		f.lru.Remove(back)
		delete(f.entries, back.Value.(uint64))
		f.stats.Evictions++
	}
	f.entries[wordAddr] = f.lru.PushFront(wordAddr)
	f.stats.BufferFills++
}

// Read implements core.DataCache.
func (f *FBA) Read(addr uint64) core.AccessOutcome {
	f.stats.Accesses++
	r := f.m.access(addr, true)
	if r.wordOK {
		if r.tagHit {
			f.stats.MainHits++
			return core.HitOutcome(f.HitLatency())
		}
		f.stats.TagMisses++
		return core.MissOutcome(f.HitLatency(), f.next, addr)
	}
	// Defective word entry: redirect to the buffer.
	f.stats.DefectAccesses++
	if !r.tagHit {
		f.stats.TagMisses++
	}
	if f.bufferHit(cache.WordAddr(addr)) {
		f.stats.BufferHits++
		return core.HitOutcome(f.HitLatency())
	}
	// Buffer miss: L2 trip, then install the word.
	out := core.MissOutcome(f.HitLatency(), f.next, addr)
	f.bufferFill(cache.WordAddr(addr))
	return out
}

// Write implements core.DataCache: write-through; a buffered defective
// word is updated in place (it stays resident), but no allocation happens
// on a write.
func (f *FBA) Write(addr uint64) core.AccessOutcome {
	f.next.WriteWord(addr)
	r := f.m.access(addr, false)
	if r.tagHit && r.wordOK {
		return core.HitOutcome(f.HitLatency())
	}
	if r.tagHit && f.bufferHit(cache.WordAddr(addr)) {
		return core.HitOutcome(f.HitLatency())
	}
	return core.AccessOutcome{Latency: f.HitLatency()}
}

// Fetch implements core.InstrCache.
func (f *FBA) Fetch(addr uint64) core.AccessOutcome { return f.Read(addr) }
