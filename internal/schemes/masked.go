package schemes

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/faultmap"
)

// maskedCache is the shared substrate of the word-disable family
// (Simple-wdis, FBA, IDC): a set-associative L1 whose frames carry the
// fault mask of their physical words. A lookup reports both the tag
// outcome and whether the requested word's physical entry is usable.
type maskedCache struct {
	cfg  cache.Config
	sets [][]mline
	tick uint64
}

type mline struct {
	tag   uint64
	valid bool
	lru   uint64
	fault uint8 // defective physical word entries of this frame
}

// lookupResult describes one masked lookup.
type lookupResult struct {
	tagHit bool
	wordOK bool // requested word's entry is fault-free in the hit/fill frame
	filled bool // a miss brought the block in
}

func newMaskedCache(name string, fm *faultmap.Map) (*maskedCache, error) {
	cfg := cache.L1Config(name)
	if fm.Words() != cfg.Words() {
		return nil, fmt.Errorf("schemes: fault map covers %d words, cache has %d", fm.Words(), cfg.Words())
	}
	m := &maskedCache{cfg: cfg}
	m.sets = make([][]mline, cfg.Sets())
	lines := make([]mline, cfg.Blocks())
	for s := range m.sets {
		m.sets[s], lines = lines[:cfg.Ways], lines[cfg.Ways:]
	}
	for s := 0; s < cfg.Sets(); s++ {
		for w := 0; w < cfg.Ways; w++ {
			m.sets[s][w].fault = fm.BlockMask(s*cfg.Ways + w)
		}
	}
	return m, nil
}

// access performs a read-style lookup with allocate-on-miss: the word-
// disable family fills the fault-free words of a victim frame on a tag
// miss regardless of whether the requested word's entry is usable (its
// neighbours still benefit). touch=false probes without state change.
func (m *maskedCache) access(addr uint64, allocate bool) lookupResult {
	m.tick++
	set := m.cfg.Index(addr)
	tag := m.cfg.Tag(addr)
	word := cache.WordInBlock(addr)
	for w := range m.sets[set] {
		l := &m.sets[set][w]
		if l.valid && l.tag == tag {
			l.lru = m.tick
			return lookupResult{tagHit: true, wordOK: l.fault&(1<<uint(word)) == 0}
		}
	}
	if !allocate {
		return lookupResult{}
	}
	// LRU victim (all frames stay usable: even a fully defective frame
	// keeps tags in the robust 8T tag array; it just never supplies
	// words).
	best, bestLRU := 0, ^uint64(0)
	for w := range m.sets[set] {
		l := &m.sets[set][w]
		if !l.valid {
			best = w
			break
		}
		if l.lru < bestLRU {
			best, bestLRU = w, l.lru
		}
	}
	l := &m.sets[set][best]
	*l = mline{tag: tag, valid: true, lru: m.tick, fault: l.fault}
	return lookupResult{filled: true, wordOK: l.fault&(1<<uint(word)) == 0}
}
