package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"time"
)

// evKind classifies supervisor events.
type evKind int

const (
	evAck evKind = iota
	evPing
	evResult
	evExit
)

// event is one message from a worker's reader goroutine to the
// supervisor loop. All supervisor state is owned by the loop goroutine;
// readers communicate exclusively through the events channel.
type event struct {
	wid     int
	kind    evKind
	index   int
	result  json.RawMessage
	errMsg  string
	exitErr error
}

// proc is one live worker incarnation. wid is unique per spawn, so
// events from a killed incarnation can never be attributed to its
// replacement.
type proc struct {
	slot     int
	wid      int
	gen      int
	cmd      *exec.Cmd
	stdin    io.WriteCloser
	ready    bool
	job      int // in-flight grid index, -1 when idle
	lastBeat time.Time
	killed   bool // already asked to die; suppress duplicate warnings
}

// slotState tracks one worker slot across incarnations: the restart
// budget, the backoff deadline and retirement.
type slotState struct {
	p       *proc // live incarnation, nil while down
	gen     int   // spawns so far; gen-1 restarts have been consumed
	retired bool
	spawnAt time.Time // earliest respawn (exponential backoff)
}

// supervisor owns the sharded run. Every field is touched only from
// runSharded's goroutine.
type supervisor struct {
	opts     Options
	kind     string
	payloads []json.RawMessage
	results  []json.RawMessage
	done     []bool
	ck       *ckWriter

	pending   []int
	remaining int // rows neither completed nor failed
	slots     []*slotState
	procs     map[int]*proc // live incarnations by wid
	events    chan event
	nextWID   int
	spawned   int // reader goroutines whose exit event is still owed
	jobErrs   map[int]error
	fatal     error // handshake/setup failure: abort, no fallback
	aborting  bool  // stop dispatching new rows
}

// runSharded partitions the pending rows across worker subprocesses.
// It returns with every reader goroutine reaped. When every worker slot
// retires (spawn failure or exhausted restart budget) with rows still
// pending, it degrades to in-process execution with a warning instead
// of failing the run.
func runSharded(ctx context.Context, kind string, payloads []json.RawMessage, pending []int,
	results []json.RawMessage, done []bool, ck *ckWriter, opts Options) error {

	shards := opts.Shards
	if shards > len(pending) {
		shards = len(pending)
	}
	s := &supervisor{
		opts: opts, kind: kind, payloads: payloads,
		results: results, done: done, ck: ck,
		pending: append([]int(nil), pending...), remaining: len(pending),
		slots: make([]*slotState, shards), procs: map[int]*proc{},
		events: make(chan event, 4*shards+16), jobErrs: map[int]error{},
	}
	for i := range s.slots {
		s.slots[i] = &slotState{}
		// Workers are not cancelled through ctx: the loop below observes
		// ctx.Done itself, drains in-flight rows and reaps every reader.
		s.spawnSlot(i) //lvlint:ignore ctxflow worker lifetime is owned by the supervisor loop, not the context
	}

	tickEvery := opts.HeartbeatInterval / 4
	if tickEvery < 10*time.Millisecond {
		tickEvery = 10 * time.Millisecond
	}
	tick := time.NewTicker(tickEvery)
	defer tick.Stop()

	// ctxDone and drainC are nilled/armed as the run transitions: a nil
	// channel disables its select case until the next phase arms it.
	ctxDone := ctx.Done()
	var drainT *time.Timer
	var drainC <-chan time.Time
	cancelled := false
	for {
		s.dispatch()
		if s.finished() {
			break
		}
		select {
		case ev := <-s.events:
			s.handle(ev)
		case <-tick.C:
			s.checkBeats()
			s.respawnDue() //lvlint:ignore ctxflow worker lifetime is owned by the supervisor loop, not the context
		case <-ctxDone:
			// Drain: stop dispatching, let in-flight rows finish, kill
			// whatever is still running at the drain deadline.
			cancelled = true
			s.aborting = true
			ctxDone = nil
			drainT = time.NewTimer(opts.DrainTimeout)
			drainC = drainT.C
		case <-drainC:
			drainC = nil
			s.killAll("drain timeout")
		}
	}
	if drainT != nil {
		drainT.Stop()
	}
	s.shutdown()

	if s.fatal != nil {
		return s.fatal
	}
	if err := joinIndexOrder(s.jobErrs); err != nil {
		return err
	}
	if cancelled {
		return ctx.Err()
	}
	if s.remaining > 0 {
		// Every slot retired with rows still pending: graceful
		// degradation to the in-process path.
		rest := make([]int, 0, s.remaining)
		for _, i := range s.pending {
			if !done[i] {
				rest = append(rest, i)
			}
		}
		fmt.Fprintf(opts.Stderr, "dist: warning: worker supervision exhausted; running %d remaining rows in-process\n", len(rest))
		return runLocal(ctx, kind, payloads, rest, results, done, ck, opts)
	}
	return nil
}

// finished reports whether the loop can stop: every row accounted for,
// an abort with nothing in flight, or no capacity left to make progress.
func (s *supervisor) finished() bool {
	if s.remaining == 0 {
		return true
	}
	if s.aborting && s.inflight() == 0 {
		return true
	}
	return s.capacity() == 0
}

// inflight counts rows currently assigned to live workers.
func (s *supervisor) inflight() int {
	n := 0
	for _, p := range s.procs {
		if p.job >= 0 {
			n++
		}
	}
	return n
}

// capacity counts slots that are live or still allowed to respawn.
func (s *supervisor) capacity() int {
	n := 0
	for _, sl := range s.slots {
		if !sl.retired {
			n++
		}
	}
	return n
}

// dispatch hands pending rows to idle ready workers, in slot order.
func (s *supervisor) dispatch() {
	if s.aborting {
		return
	}
	for _, sl := range s.slots {
		if len(s.pending) == 0 {
			return
		}
		p := sl.p
		if p == nil || !p.ready || p.job >= 0 {
			continue
		}
		idx := s.pending[0]
		if err := writeFrame(p.stdin, frame{Type: frameJob, Index: idx, Payload: s.payloads[idx]}); err != nil {
			// The pipe is broken: the worker is dying or dead. Its exit
			// event will requeue nothing (job not yet recorded), so the
			// row stays pending for another worker.
			fmt.Fprintf(s.opts.Stderr, "dist: warning: worker %d rejected a job (%v); killing it\n", p.slot, err)
			s.kill(p)
			continue
		}
		s.pending = s.pending[1:]
		p.job = idx
		p.lastBeat = time.Now()
	}
}

// handle applies one worker event to the supervisor state.
func (s *supervisor) handle(ev event) {
	p := s.procs[ev.wid]
	if p == nil && ev.kind != evExit {
		return // stale incarnation
	}
	switch ev.kind {
	case evAck:
		p.lastBeat = time.Now()
		if ev.errMsg != "" {
			// The worker binary cannot run this grid (unknown kind or
			// failed setup). Every incarnation would fail the same way
			// and so would the in-process fallback: abort the run.
			s.fatal = fmt.Errorf("dist: worker handshake failed: %s", ev.errMsg)
			s.aborting = true
			s.killAll("handshake failure")
			return
		}
		p.ready = true
	case evPing:
		p.lastBeat = time.Now()
	case evResult:
		p.lastBeat = time.Now()
		if p.job == ev.index {
			p.job = -1
		}
		if s.done[ev.index] {
			return // duplicate from a requeued row; results are deterministic, so identical
		}
		if ev.errMsg != "" {
			s.jobErrs[ev.index] = &WorkerError{Index: ev.index, Msg: ev.errMsg}
			s.remaining--
			// First failure aborts the grid, mirroring engine.Map's
			// first-error-cancels contract; in-flight rows drain.
			s.aborting = true
			return
		}
		s.results[ev.index] = ev.result
		s.done[ev.index] = true
		s.remaining--
		if s.ck != nil {
			s.ck.add(ev.index, ev.result)
		}
	case evExit:
		s.spawned--
		if p == nil {
			return
		}
		delete(s.procs, ev.wid)
		sl := s.slots[p.slot]
		if sl.p == p {
			sl.p = nil
		}
		if p.job >= 0 {
			// Requeue the dead worker's in-flight row at the head of
			// the queue so it reruns promptly.
			s.pending = append([]int{p.job}, s.pending...)
			p.job = -1
		}
		if s.aborting || sl.retired {
			return
		}
		restarts := sl.gen // spawns so far; the next spawn would be restart #restarts
		if s.opts.MaxRestarts >= 0 && restarts <= s.opts.MaxRestarts {
			delay := backoffDelay(s.opts.BackoffBase, s.opts.BackoffMax, restarts-1)
			sl.spawnAt = time.Now().Add(delay)
			fmt.Fprintf(s.opts.Stderr, "dist: warning: worker %d died (%s); restart %d/%d in %v\n",
				p.slot, exitReason(ev.exitErr), restarts, s.opts.MaxRestarts, delay)
		} else {
			sl.retired = true
			fmt.Fprintf(s.opts.Stderr, "dist: warning: worker %d died (%s); restart budget exhausted, retiring the slot\n",
				p.slot, exitReason(ev.exitErr))
		}
	}
}

// exitReason renders a worker's exit status for warnings.
func exitReason(err error) string {
	if err == nil {
		return "exited"
	}
	return err.Error()
}

// backoffDelay is base<<attempt capped at max.
func backoffDelay(base, max time.Duration, attempt int) time.Duration {
	if attempt < 0 {
		attempt = 0
	}
	d := base
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	return d
}

// checkBeats kills workers that have gone silent past the heartbeat
// timeout; their exit events requeue any in-flight row and schedule the
// restart.
func (s *supervisor) checkBeats() {
	now := time.Now()
	for _, sl := range s.slots {
		p := sl.p
		if p == nil || p.killed {
			continue
		}
		if silent := now.Sub(p.lastBeat); silent > s.opts.HeartbeatTimeout {
			fmt.Fprintf(s.opts.Stderr, "dist: warning: worker %d silent for %v (heartbeat timeout %v); killing it\n",
				p.slot, silent.Round(time.Millisecond), s.opts.HeartbeatTimeout)
			s.kill(p)
		}
	}
}

// respawnDue restarts downed, unretired slots whose backoff elapsed,
// as long as rows remain to serve.
func (s *supervisor) respawnDue() {
	if s.aborting || len(s.pending) == 0 {
		return
	}
	now := time.Now()
	for i, sl := range s.slots {
		if sl.p == nil && !sl.retired && !now.Before(sl.spawnAt) {
			s.spawnSlot(i)
		}
	}
}

// spawnSlot launches a new incarnation for a slot. A spawn failure
// retires the slot immediately: the binary or environment is unusable,
// and retrying cannot fix it — degradation to in-process execution
// handles the rest.
func (s *supervisor) spawnSlot(slot int) {
	sl := s.slots[slot]
	gen := sl.gen
	sl.gen++
	argv := s.opts.Command
	cmd := exec.Command(argv[0], argv[1:]...)
	cmd.Env = append(append(os.Environ(), s.opts.Env...), fmt.Sprintf("%s=%d", envGen, gen))
	cmd.Stderr = s.opts.Stderr
	stdin, err := cmd.StdinPipe()
	if err == nil {
		var stdout io.ReadCloser
		stdout, err = cmd.StdoutPipe()
		if err == nil {
			err = cmd.Start()
			if err == nil {
				s.nextWID++
				p := &proc{slot: slot, wid: s.nextWID, gen: gen, cmd: cmd, stdin: stdin, job: -1, lastBeat: time.Now()}
				sl.p = p
				s.procs[p.wid] = p
				s.spawned++
				go s.read(p.wid, stdout, cmd)
				if err := writeFrame(stdin, frame{
					Type: frameHello, Proto: protoVersion, Kind: s.kind,
					Setup: s.opts.Setup, BeatNS: int64(s.opts.HeartbeatInterval),
				}); err != nil {
					fmt.Fprintf(s.opts.Stderr, "dist: warning: worker %d handshake write failed (%v); killing it\n", slot, err)
					s.kill(p)
				}
				return
			}
		}
	}
	sl.retired = true
	fmt.Fprintf(s.opts.Stderr, "dist: warning: cannot spawn worker %d (%v); retiring the slot\n", slot, err)
}

// read pumps one incarnation's stdout frames into the event channel,
// then reaps the process. It terminates when the pipe closes — on clean
// exit, crash, or kill — and always delivers exactly one exit event.
func (s *supervisor) read(wid int, r io.Reader, cmd *exec.Cmd) {
	for {
		var f frame
		if err := readFrame(r, &f); err != nil {
			break
		}
		switch f.Type {
		case frameAck:
			s.events <- event{wid: wid, kind: evAck, errMsg: f.Err}
		case framePing:
			s.events <- event{wid: wid, kind: evPing}
		case frameResult:
			s.events <- event{wid: wid, kind: evResult, index: f.Index, result: f.Result, errMsg: f.Err}
		default:
			// Ignore unknown frames from a same-proto worker.
		}
	}
	s.events <- event{wid: wid, kind: evExit, exitErr: cmd.Wait()}
}

// kill terminates one incarnation; its reader goroutine delivers the
// exit event that requeues and reschedules.
func (s *supervisor) kill(p *proc) {
	if p.killed {
		return
	}
	p.killed = true
	if p.cmd.Process != nil {
		p.cmd.Process.Kill() //lvlint:ignore errdrop the process may already be gone; its exit event is delivered either way
	}
}

// killAll terminates every live incarnation, in slot order so the
// warnings print deterministically. Every live proc is some slot's
// current incarnation (an exited one is removed from both places by
// its exit event), so iterating slots covers them all.
func (s *supervisor) killAll(reason string) {
	for _, sl := range s.slots {
		p := sl.p
		if p != nil && !p.killed {
			fmt.Fprintf(s.opts.Stderr, "dist: killing worker %d (%s)\n", p.slot, reason)
			s.kill(p)
		}
	}
}

// shutdown ends the run: ask live workers to exit, give them a grace
// period, kill stragglers, and drain the event channel until every
// reader goroutine has delivered its exit — no goroutine outlives the
// supervisor.
func (s *supervisor) shutdown() {
	for _, p := range s.procs {
		if p.killed {
			continue
		}
		if err := writeFrame(p.stdin, frame{Type: frameBye}); err != nil {
			s.kill(p)
			continue
		}
		if err := p.stdin.Close(); err != nil {
			s.kill(p)
		}
	}
	grace := time.NewTimer(2 * time.Second)
	defer grace.Stop()
	graceC := grace.C
	for s.spawned > 0 {
		select {
		case ev := <-s.events:
			if ev.kind == evExit {
				s.spawned--
				delete(s.procs, ev.wid)
			}
			// Late results after the loop decided to stop are dropped:
			// the rows they carry were either already collected or will
			// rerun from the checkpoint with identical bytes.
		case <-graceC:
			graceC = nil
			s.killAll("shutdown grace expired")
		}
	}
}
