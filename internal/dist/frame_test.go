package dist

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := frame{Type: frameJob, Index: 7, Payload: []byte(`{"seed":42}`)}
	if err := writeFrame(&buf, in); err != nil {
		t.Fatalf("writeFrame: %v", err)
	}
	var out frame
	if err := readFrame(&buf, &out); err != nil {
		t.Fatalf("readFrame: %v", err)
	}
	if out.Type != in.Type || out.Index != in.Index || string(out.Payload) != string(in.Payload) {
		t.Fatalf("round trip mismatch: %+v != %+v", out, in)
	}
	if err := readFrame(&buf, &out); err != io.EOF {
		t.Fatalf("at frame boundary: got %v, want io.EOF", err)
	}
}

func TestFrameSequence(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 5; i++ {
		if err := writeFrame(&buf, frame{Type: frameResult, Index: i}); err != nil {
			t.Fatalf("writeFrame %d: %v", i, err)
		}
	}
	for i := 0; i < 5; i++ {
		var f frame
		if err := readFrame(&buf, &f); err != nil {
			t.Fatalf("readFrame %d: %v", i, err)
		}
		if f.Index != i {
			t.Fatalf("frame %d: got index %d", i, f.Index)
		}
	}
}

func TestFrameTruncation(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, frame{Type: framePing}); err != nil {
		t.Fatalf("writeFrame: %v", err)
	}
	whole := buf.Bytes()
	for cut := 1; cut < len(whole); cut++ {
		var f frame
		err := readFrame(bytes.NewReader(whole[:cut]), &f)
		if err == nil || err == io.EOF {
			t.Fatalf("truncated at %d/%d bytes: got %v, want unexpected-EOF error", cut, len(whole), err)
		}
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("truncated at %d: error %v does not wrap io.ErrUnexpectedEOF", cut, err)
		}
	}
}

func TestFrameOversizedPrefixRejectedBeforeAllocation(t *testing.T) {
	var prefix [4]byte
	binary.BigEndian.PutUint32(prefix[:], uint32(maxFrame+1))
	var f frame
	err := readFrame(bytes.NewReader(prefix[:]), &f)
	if !errors.Is(err, errFrameTooLarge) {
		t.Fatalf("oversized prefix: got %v, want errFrameTooLarge", err)
	}
}

func TestFrameGarbageBody(t *testing.T) {
	var buf bytes.Buffer
	body := []byte("not json")
	var prefix [4]byte
	binary.BigEndian.PutUint32(prefix[:], uint32(len(body)))
	buf.Write(prefix[:])
	buf.Write(body)
	var f frame
	if err := readFrame(&buf, &f); err == nil {
		t.Fatal("garbage body decoded without error")
	}
}
