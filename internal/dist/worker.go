package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"sync"
	"time"
)

// WorkerFlag is the hidden argv[1] that switches a command binary into
// worker mode. It is matched before flag.Parse runs, so it never
// appears in -help output; the supervisor is its only caller.
const WorkerFlag = "-dist-worker"

// protoVersion gates the supervisor↔worker frame protocol.
const protoVersion = 1

// Frame types. The supervisor sends hello, job and bye; the worker
// sends ack, ping (heartbeat) and result.
const (
	frameHello  = "hello"
	frameAck    = "ack"
	frameJob    = "job"
	frameResult = "result"
	framePing   = "ping"
	frameBye    = "bye"
)

// frame is the single wire message shape; Type selects which fields
// are meaningful.
type frame struct {
	Type    string          `json:"type"`
	Proto   int             `json:"proto,omitempty"`
	Kind    string          `json:"kind,omitempty"`
	Setup   json.RawMessage `json:"setup,omitempty"`
	BeatNS  int64           `json:"beat_ns,omitempty"`
	Index   int             `json:"index,omitempty"`
	Payload json.RawMessage `json:"payload,omitempty"`
	Result  json.RawMessage `json:"result,omitempty"`
	Err     string          `json:"err,omitempty"`
}

// Test-hook environment variables, read only in worker mode. They
// exist so the supervision tests (and nothing else) can make a worker
// misbehave deterministically: crash once, crash on every restart, or
// wedge silently so the heartbeat timeout fires.
const (
	// envGen carries the worker's restart generation (set by the
	// supervisor on every spawn; "0" is the first launch).
	envGen = "LVDIST_GEN"
	// envCrashIndex makes a generation-0 worker exit(3) when handed the
	// given job index — restarted workers run it normally.
	envCrashIndex = "LVDIST_TEST_CRASH_INDEX"
	// envCrashEvery makes every generation crash on the given index,
	// exhausting the restart budget.
	envCrashEvery = "LVDIST_TEST_CRASH_EVERY"
	// envWedgeIndex makes a generation-0 worker go silent (heartbeats
	// included) when handed the given index, so supervision must kill it.
	envWedgeIndex = "LVDIST_TEST_WEDGE_INDEX"
)

// MaybeWorkerMain turns the process into a dist worker when it was
// spawned with WorkerFlag as its first argument, and returns otherwise.
// Commands call it first thing in main, before flag.Parse, after their
// job kinds are registered (internal/sim registers in init). A worker
// never returns: it serves frames on stdin/stdout until told to stop,
// then exits.
func MaybeWorkerMain() {
	if len(os.Args) < 2 || os.Args[1] != WorkerFlag {
		return
	}
	// ^C goes to the whole foreground process group; draining is the
	// supervisor's job, so workers ignore the interrupt and keep
	// serving until the supervisor says bye (or kills them).
	signal.Ignore(os.Interrupt)
	os.Exit(workerMain(os.Stdin, os.Stdout, os.Getenv))
}

// workerState bundles the frame writer shared by the job loop and the
// heartbeat goroutine.
type workerState struct {
	mu  sync.Mutex
	out io.Writer // guarded by mu
}

func (w *workerState) send(f frame) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return writeFrame(w.out, f)
}

// workerMain is the worker protocol loop, factored off os.* for tests.
// The exit code is 0 on a clean bye/EOF, nonzero on protocol errors.
func workerMain(in io.Reader, out io.Writer, getenv func(string) string) int {
	w := &workerState{out: out}

	var hello frame
	if err := readFrame(in, &hello); err != nil {
		fmt.Fprintf(os.Stderr, "dist worker: handshake: %v\n", err)
		return 1
	}
	if hello.Type != frameHello || hello.Proto != protoVersion {
		// Err is best-effort: the supervisor may already be gone.
		w.send(frame{Type: frameAck, Err: fmt.Sprintf("dist: unexpected handshake %q proto %d (want %q proto %d)", hello.Type, hello.Proto, frameHello, protoVersion)}) //lvlint:ignore errdrop the handshake failure is already the reported outcome
		return 1
	}
	runner, err := buildRunner(hello.Kind, hello.Setup)
	ackErr := ""
	if err != nil {
		ackErr = err.Error()
	}
	if err := w.send(frame{Type: frameAck, Err: ackErr}); err != nil {
		fmt.Fprintf(os.Stderr, "dist worker: ack: %v\n", err)
		return 1
	}
	if runner == nil {
		return 1
	}

	// Heartbeats: prove the worker's runtime is alive while a job
	// computes. A merely slow job keeps beating (per-run timeouts are
	// the engine's job); a wedged or dead process goes silent and the
	// supervisor's heartbeat timeout reaps it.
	stopBeat := make(chan struct{})
	var stopOnce sync.Once
	stopHeartbeat := func() { stopOnce.Do(func() { close(stopBeat) }) }
	var beatWG sync.WaitGroup
	if hello.BeatNS > 0 {
		beatWG.Add(1)
		go func() {
			defer beatWG.Done()
			tick := time.NewTicker(time.Duration(hello.BeatNS))
			defer tick.Stop()
			for {
				select {
				case <-stopBeat:
					return
				case <-tick.C:
					if w.send(frame{Type: framePing}) != nil {
						// The pipe is gone; the job loop will fail on
						// its own write soon enough.
						return
					}
				}
			}
		}()
	}
	defer beatWG.Wait()
	defer stopHeartbeat()

	gen := getenv(envGen)
	for {
		var f frame
		err := readFrame(in, &f)
		if err == io.EOF {
			return 0
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "dist worker: %v\n", err)
			return 1
		}
		switch f.Type {
		case frameBye:
			return 0
		case frameJob:
			switch action, code := testHook(f.Index, gen, getenv); action {
			case hookCrash:
				return code
			case hookWedge:
				// Simulate a fully wedged runtime: stop the heartbeat
				// goroutine, then block forever. A bare select{} would
				// trip the runtime deadlock detector and exit — a ticker
				// that never usefully fires keeps the process alive and
				// silent until the supervisor's heartbeat timeout kills it.
				stopHeartbeat()
				beatWG.Wait()
				wedge := time.NewTicker(time.Hour)
				for range wedge.C {
				}
			}
			res, jobErr := runJob2(runner, f.Payload)
			rf := frame{Type: frameResult, Index: f.Index, Result: res}
			if jobErr != nil {
				rf.Err = jobErr.Error()
				rf.Result = nil
			}
			if err := w.send(rf); err != nil {
				fmt.Fprintf(os.Stderr, "dist worker: %v\n", err)
				return 1
			}
		default:
			// Unknown frame types from a newer supervisor are ignored,
			// not fatal: the proto version already matched.
		}
	}
}

// buildRunner resolves the kind and runs its setup.
func buildRunner(kind string, setup json.RawMessage) (Runner, error) {
	setupFn, err := lookupKind(kind)
	if err != nil {
		return nil, err
	}
	runner, err := setupFn(setup)
	if err != nil {
		return nil, fmt.Errorf("dist: setup for kind %q: %w", kind, err)
	}
	return runner, nil
}

// runJob2 executes one job with panic containment: a panicking handler
// reports a job error frame instead of tearing the worker down with an
// opaque exit status.
func runJob2(runner Runner, payload json.RawMessage) (res json.RawMessage, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("job panicked: %v", r)
		}
	}()
	return runner(context.Background(), payload)
}

// Test-hook actions.
const (
	hookNone = iota
	hookCrash
	hookWedge
)

// testHook consults the crash/wedge environment hooks for one job
// index. For hookCrash, code is the exit status to die with.
func testHook(index int, gen string, getenv func(string) string) (action, code int) {
	matches := func(env string) bool {
		v := getenv(env)
		if v == "" {
			return false
		}
		i, err := strconv.Atoi(v)
		return err == nil && i == index
	}
	if matches(envCrashEvery) {
		return hookCrash, 3
	}
	if gen != "" && gen != "0" {
		return hookNone, 0
	}
	if matches(envCrashIndex) {
		return hookCrash, 3
	}
	if matches(envWedgeIndex) {
		return hookWedge, 0
	}
	return hookNone, 0
}
