package dist

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

// fastOpts is the supervision tuning for tests: quick heartbeats and
// backoffs so failure handling runs in milliseconds, not seconds.
func fastOpts(shards int) Options {
	return Options{
		Shards:            shards,
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatTimeout:  250 * time.Millisecond,
		BackoffBase:       10 * time.Millisecond,
		BackoffMax:        50 * time.Millisecond,
		DrainTimeout:      2 * time.Second,
	}
}

func TestShardedMatchesLocalByteIdentical(t *testing.T) {
	n := 20
	want := mustRun(t, n, Options{Stderr: &syncBuffer{}})
	for _, shards := range []int{1, 2, 4} {
		opts := fastOpts(shards)
		opts.Stderr = &syncBuffer{}
		got := mustRun(t, n, opts)
		assertSameRows(t, fmt.Sprintf("shards=%d vs local", shards), got, want)
	}
}

func TestShardedWritesCheckpoint(t *testing.T) {
	path := t.TempDir() + "/grid.ckpt"
	opts := fastOpts(2)
	opts.Checkpoint = path
	opts.Stderr = &syncBuffer{}
	mustRun(t, 8, opts)
	c, err := LoadCheckpoint(path)
	if err != nil || len(c.Rows) != 8 {
		t.Fatalf("checkpoint after sharded run: %v rows=%d", err, len(c.Rows))
	}
}

func TestKilledWorkerRequeuedByteIdentical(t *testing.T) {
	n := 12
	want := mustRun(t, n, Options{Stderr: &syncBuffer{}})
	var stderr syncBuffer
	opts := fastOpts(2)
	opts.Stderr = &stderr
	opts.Env = []string{envCrashIndex + "=5"}
	got := mustRun(t, n, opts)
	assertSameRows(t, "after worker crash", got, want)
	if !strings.Contains(stderr.String(), "restart 1/") {
		t.Fatalf("stderr missing restart warning:\n%s", stderr.String())
	}
}

func TestWedgedWorkerKilledByHeartbeatTimeout(t *testing.T) {
	n := 10
	want := mustRun(t, n, Options{Stderr: &syncBuffer{}})
	var stderr syncBuffer
	opts := fastOpts(2)
	opts.Stderr = &stderr
	opts.Env = []string{envWedgeIndex + "=3"}
	got := mustRun(t, n, opts)
	assertSameRows(t, "after wedged worker", got, want)
	out := stderr.String()
	if !strings.Contains(out, "silent for") {
		t.Fatalf("stderr missing heartbeat-timeout warning:\n%s", out)
	}
	if !strings.Contains(out, "restart 1/") {
		t.Fatalf("stderr missing restart warning:\n%s", out)
	}
}

func TestRestartBudgetExhaustionDegradesInProcess(t *testing.T) {
	n := 8
	want := mustRun(t, n, Options{Stderr: &syncBuffer{}})
	var stderr syncBuffer
	opts := fastOpts(1)
	opts.MaxRestarts = 2
	opts.Stderr = &stderr
	// Every incarnation crashes on index 2: the slot burns its whole
	// restart budget, retires, and the run must degrade in-process and
	// still produce identical bytes.
	opts.Env = []string{envCrashEvery + "=2"}
	got := mustRun(t, n, opts)
	assertSameRows(t, "after budget exhaustion", got, want)
	out := stderr.String()
	if !strings.Contains(out, "restart budget exhausted") {
		t.Fatalf("stderr missing retirement warning:\n%s", out)
	}
	if !strings.Contains(out, "in-process") {
		t.Fatalf("stderr missing degradation warning:\n%s", out)
	}
}

func TestSpawnFailureDegradesInProcess(t *testing.T) {
	n := 6
	want := mustRun(t, n, Options{Stderr: &syncBuffer{}})
	var stderr syncBuffer
	opts := fastOpts(2)
	opts.Command = []string{"/nonexistent/dist-worker-binary"}
	opts.Stderr = &stderr
	got := mustRun(t, n, opts)
	assertSameRows(t, "after spawn failure", got, want)
	out := stderr.String()
	if !strings.Contains(out, "cannot spawn") {
		t.Fatalf("stderr missing spawn warning:\n%s", out)
	}
	if !strings.Contains(out, "in-process") {
		t.Fatalf("stderr missing degradation warning:\n%s", out)
	}
}

func TestShardedJobErrorAbortsWithWorkerError(t *testing.T) {
	opts := fastOpts(2)
	opts.Setup = []byte(`{"fail_index":3}`)
	opts.Stderr = &syncBuffer{}
	_, done, err := Run(context.Background(), testKind, testGrid(8), opts)
	if err == nil {
		t.Fatal("Run succeeded despite failing job")
	}
	var we *WorkerError
	if !errors.As(err, &we) || we.Index != 3 {
		t.Fatalf("error %v does not carry WorkerError for index 3", err)
	}
	if done[3] {
		t.Fatal("failed row marked done")
	}
}

func TestShardedUnknownKindFailsWithoutFallback(t *testing.T) {
	opts := fastOpts(2)
	opts.Stderr = &syncBuffer{}
	_, _, err := Run(context.Background(), "no.such.kind", testGrid(4), opts)
	if err == nil || !strings.Contains(err.Error(), "not registered") {
		t.Fatalf("got %v, want unregistered-kind handshake failure", err)
	}
}

func TestShardedResumeSkipsCompletedRows(t *testing.T) {
	n := 10
	payloads := testGrid(n)
	path := t.TempDir() + "/grid.ckpt"
	full := mustRun(t, n, Options{Checkpoint: path, Stderr: &syncBuffer{}})
	// Drop rows 4..9 from the checkpoint, then resume sharded.
	c, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	kept := c.Rows[:0]
	for _, r := range c.Rows {
		if r.Index < 4 {
			kept = append(kept, r)
		}
	}
	c.Rows = kept
	if err := SaveCheckpoint(path, c); err != nil {
		t.Fatal(err)
	}
	var stderr syncBuffer
	opts := fastOpts(2)
	opts.Checkpoint = path
	opts.Resume = true
	opts.Stderr = &stderr
	got, done, err := Run(context.Background(), testKind, payloads, opts)
	if err != nil {
		t.Fatalf("resumed sharded run: %v", err)
	}
	for i := range done {
		if !done[i] {
			t.Fatalf("row %d not done", i)
		}
	}
	assertSameRows(t, "sharded resume vs full run", got, full)
	if !strings.Contains(stderr.String(), "resumed 4/10 rows") {
		t.Fatalf("stderr missing resume note:\n%s", stderr.String())
	}
}
