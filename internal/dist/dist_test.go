package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// TestMain lets the test binary serve as its own dist worker: the
// supervisor's default Command re-invokes os.Args[0] with WorkerFlag,
// which is exactly how the real commands embed their worker mode.
func TestMain(m *testing.M) {
	MaybeWorkerMain()
	os.Exit(m.Run())
}

// testKind is a deterministic toy job: result is a float computed from
// the payload seed, exercising the exact float64 round-trip the real
// simulation results rely on. Setup can inject a failing index and a
// per-job delay.
const testKind = "disttest.echo"

type testSetup struct {
	Scale     float64 `json:"scale"`
	FailIndex int     `json:"fail_index"`
	DelayMS   int     `json:"delay_ms"`
}

type testPayload struct {
	Index int   `json:"index"`
	Seed  int64 `json:"seed"`
}

type testResult struct {
	Index int     `json:"index"`
	V     float64 `json:"v"`
}

func init() {
	Register(testKind, func(setup json.RawMessage) (Runner, error) {
		cfg := testSetup{Scale: 1, FailIndex: -1}
		if len(setup) > 0 {
			if err := json.Unmarshal(setup, &cfg); err != nil {
				return nil, err
			}
		}
		return func(ctx context.Context, payload json.RawMessage) (json.RawMessage, error) {
			var p testPayload
			if err := json.Unmarshal(payload, &p); err != nil {
				return nil, err
			}
			if cfg.DelayMS > 0 {
				t := time.NewTimer(time.Duration(cfg.DelayMS) * time.Millisecond)
				select {
				case <-ctx.Done():
					t.Stop()
					return nil, ctx.Err()
				case <-t.C:
				}
			}
			if p.Index == cfg.FailIndex {
				return nil, fmt.Errorf("synthetic failure at index %d", p.Index)
			}
			return json.Marshal(testResult{Index: p.Index, V: math.Sqrt(float64(p.Seed)+0.25) * cfg.Scale})
		}, nil
	})
}

// testGrid builds n payloads with seeds derived from the index.
func testGrid(n int) []json.RawMessage {
	payloads := make([]json.RawMessage, n)
	for i := range payloads {
		b, err := json.Marshal(testPayload{Index: i, Seed: int64(i)*7919 + 13})
		if err != nil {
			panic(err)
		}
		payloads[i] = b
	}
	return payloads
}

// syncBuffer is a mutex-guarded stderr sink: the supervisor loop and
// the per-worker stderr copy goroutines all write to it concurrently.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer // guarded by mu
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// mustRun executes the grid and fails the test on error.
func mustRun(t *testing.T, n int, opts Options) []json.RawMessage {
	t.Helper()
	results, done, err := Run(context.Background(), testKind, testGrid(n), opts)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, d := range done {
		if !d {
			t.Fatalf("row %d not done", i)
		}
	}
	return results
}

// assertSameRows byte-compares two result sets.
func assertSameRows(t *testing.T, label string, got, want []json.RawMessage) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, want %d", label, len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("%s: row %d differs:\n  got  %s\n  want %s", label, i, got[i], want[i])
		}
	}
}

func TestRunLocal(t *testing.T) {
	results := mustRun(t, 8, Options{LocalWorkers: 2})
	var r testResult
	if err := json.Unmarshal(results[3], &r); err != nil || r.Index != 3 {
		t.Fatalf("row 3 = %s (err %v)", results[3], err)
	}
}

func TestRunLocalWritesCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "grid.ckpt")
	mustRun(t, 6, Options{Checkpoint: path})
	c, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatalf("LoadCheckpoint: %v", err)
	}
	if len(c.Rows) != 6 || c.N != 6 || c.Kind != testKind {
		t.Fatalf("checkpoint = %+v", c)
	}
}

func TestRunResumeSkipsCompletedRows(t *testing.T) {
	n := 6
	payloads := testGrid(n)
	path := filepath.Join(t.TempDir(), "grid.ckpt")
	// Seed the checkpoint with sentinel results for rows 1 and 4. Resume
	// must keep these bytes verbatim — proof the rows are not recomputed.
	sentinel1, sentinel4 := json.RawMessage(`{"sentinel":1}`), json.RawMessage(`{"sentinel":4}`)
	prev := &Checkpoint{Kind: testKind, GridHash: GridHash(testKind, nil, payloads), N: n,
		Rows: []CheckpointRow{{Index: 1, Result: sentinel1}, {Index: 4, Result: sentinel4}}}
	if err := SaveCheckpoint(path, prev); err != nil {
		t.Fatal(err)
	}
	var stderr syncBuffer
	results, done, err := Run(context.Background(), testKind, payloads, Options{Checkpoint: path, Resume: true, Stderr: &stderr})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, d := range done {
		if !d {
			t.Fatalf("row %d not done", i)
		}
	}
	if !bytes.Equal(results[1], sentinel1) || !bytes.Equal(results[4], sentinel4) {
		t.Fatalf("resumed rows were recomputed: %s / %s", results[1], results[4])
	}
	if !bytes.Contains([]byte(stderr.String()), []byte("resumed 2/6 rows")) {
		t.Fatalf("stderr missing resume note:\n%s", stderr.String())
	}
	c, err := LoadCheckpoint(path)
	if err != nil || len(c.Rows) != n {
		t.Fatalf("final checkpoint: %v rows=%d", err, len(c.Rows))
	}
}

func TestRunResumeRejectsStaleCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "grid.ckpt")
	mustRun(t, 4, Options{Checkpoint: path})
	// Same path, different grid (one more row): must be rejected.
	_, _, err := Run(context.Background(), testKind, testGrid(5), Options{Checkpoint: path, Resume: true, Stderr: &syncBuffer{}})
	if !errors.Is(err, ErrStaleCheckpoint) {
		t.Fatalf("got %v, want ErrStaleCheckpoint", err)
	}
	// Same row count but different setup (part of the grid hash): rejected.
	_, _, err = Run(context.Background(), testKind, testGrid(4),
		Options{Checkpoint: path, Resume: true, Setup: []byte(`{"scale":2}`), Stderr: &syncBuffer{}})
	if !errors.Is(err, ErrStaleCheckpoint) {
		t.Fatalf("setup change: got %v, want ErrStaleCheckpoint", err)
	}
}

func TestRunResumeMissingCheckpointStartsFresh(t *testing.T) {
	path := filepath.Join(t.TempDir(), "never-written.ckpt")
	var stderr syncBuffer
	results, done, err := Run(context.Background(), testKind, testGrid(3),
		Options{Checkpoint: path, Resume: true, Stderr: &stderr})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := range done {
		if !done[i] || len(results[i]) == 0 {
			t.Fatalf("row %d incomplete", i)
		}
	}
	if !bytes.Contains([]byte(stderr.String()), []byte("starting fresh")) {
		t.Fatalf("stderr missing starting-fresh note:\n%s", stderr.String())
	}
}

func TestRunJobErrorReturnsPartialResults(t *testing.T) {
	path := filepath.Join(t.TempDir(), "grid.ckpt")
	_, done, err := Run(context.Background(), testKind, testGrid(5),
		Options{Checkpoint: path, Setup: []byte(`{"fail_index":2}`), LocalWorkers: 1, Stderr: &syncBuffer{}})
	if err == nil {
		t.Fatal("Run succeeded despite failing job")
	}
	if done[2] {
		t.Fatal("failed row marked done")
	}
	// The checkpoint holds exactly the done rows.
	c, err2 := LoadCheckpoint(path)
	if err2 != nil {
		t.Fatal(err2)
	}
	nDone := 0
	for _, d := range done {
		if d {
			nDone++
		}
	}
	if len(c.Rows) != nDone {
		t.Fatalf("checkpoint has %d rows, done count is %d", len(c.Rows), nDone)
	}
}

func TestRunCancelThenResumeByteIdentical(t *testing.T) {
	n := 10
	payloads := testGrid(n)
	setup := json.RawMessage(`{"delay_ms":15}`)
	want, doneAll, err := Run(context.Background(), testKind, payloads, Options{Setup: setup, LocalWorkers: 1})
	if err != nil {
		t.Fatalf("uninterrupted run: %v", err)
	}
	for i := range doneAll {
		if !doneAll[i] {
			t.Fatalf("uninterrupted run left row %d undone", i)
		}
	}

	path := filepath.Join(t.TempDir(), "grid.ckpt")
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		// Cancel once the checkpoint holds a few rows — mid-campaign.
		for {
			if c, err := LoadCheckpoint(path); err == nil && len(c.Rows) >= 3 {
				cancel()
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()
	_, donePart, err := Run(ctx, testKind, payloads,
		Options{Setup: setup, LocalWorkers: 1, Checkpoint: path, Stderr: &syncBuffer{}})
	cancel()
	if err == nil {
		t.Fatal("interrupted run reported no error")
	}
	interrupted := false
	for i := range donePart {
		if !donePart[i] {
			interrupted = true
		}
	}
	if !interrupted {
		t.Skip("run completed before cancellation landed; nothing to resume")
	}

	got, doneRes, err := Run(context.Background(), testKind, payloads,
		Options{Setup: setup, LocalWorkers: 1, Checkpoint: path, Resume: true, Stderr: &syncBuffer{}})
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	for i := range doneRes {
		if !doneRes[i] {
			t.Fatalf("resumed run left row %d undone", i)
		}
	}
	assertSameRows(t, "interrupted-then-resumed vs uninterrupted", got, want)
}
