// Package dist executes a seed-keyed job grid across worker
// subprocesses with durable checkpoints, per-worker supervision and
// deterministic index-ordered merge.
//
// The shape mirrors engine.Map across a process boundary: a grid of n
// JSON job payloads is partitioned dynamically over Shards worker
// processes (the current binary re-invoked in a hidden -dist-worker
// mode, speaking length-prefixed JSON frames over its stdin/stdout
// pipes), and the results merge by index — never by completion order —
// so the output of a campaign is byte-identical at any shard count,
// including zero (in-process execution on an engine.Pool).
//
// Robustness is the product:
//
//   - durable checkpoints: completed rows are flushed to an
//     atomically-renamed checkpoint file keyed by a content hash of the
//     whole grid, so a SIGKILLed campaign resumes instead of
//     restarting, and a checkpoint left by an edited grid is rejected;
//   - supervision: workers heartbeat while computing; a worker that
//     crashes or goes silent past the heartbeat timeout is killed and
//     restarted with bounded exponential backoff, its in-flight row
//     requeued; a worker that cannot be spawned at all (or exhausts its
//     restart budget) degrades the run to in-process execution with a
//     warning rather than failing it;
//   - draining: cancellation (SIGINT in the commands) stops dispatch,
//     lets in-flight rows finish, flushes a final checkpoint and
//     returns the completed rows MapPartial-style.
package dist

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// maxFrame bounds a single frame body. Larger lengths are rejected
// before allocation, so a corrupt length prefix cannot OOM the reader.
const maxFrame = 64 << 20

// errFrameTooLarge reports a length prefix beyond maxFrame.
var errFrameTooLarge = errors.New("dist: frame exceeds size limit")

// writeFrame marshals v and writes it as one length-prefixed frame:
// a 4-byte big-endian body length followed by the JSON body. The
// prefix and body go out in a single Write so concurrent writers
// serialized by a mutex never interleave partial frames.
func writeFrame(w io.Writer, v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("dist: encoding frame: %w", err)
	}
	if len(body) > maxFrame {
		return fmt.Errorf("%w: %d bytes", errFrameTooLarge, len(body))
	}
	buf := make([]byte, 4+len(body))
	binary.BigEndian.PutUint32(buf, uint32(len(body)))
	copy(buf[4:], body)
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("dist: writing frame: %w", err)
	}
	return nil
}

// readFrame reads one length-prefixed frame into v. A clean EOF at a
// frame boundary returns io.EOF; a frame cut off mid-prefix or mid-body
// returns an error wrapping io.ErrUnexpectedEOF.
func readFrame(r io.Reader, v any) error {
	var prefix [4]byte
	if _, err := io.ReadFull(r, prefix[:]); err != nil {
		if err == io.EOF {
			return io.EOF
		}
		return fmt.Errorf("dist: reading frame length: %w", err)
	}
	n := binary.BigEndian.Uint32(prefix[:])
	if n > maxFrame {
		return fmt.Errorf("%w: %d bytes", errFrameTooLarge, n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return fmt.Errorf("dist: reading %d-byte frame body: %w", n, err)
	}
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("dist: decoding frame: %w", err)
	}
	return nil
}
