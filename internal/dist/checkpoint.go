package dist

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// checkpointMagic identifies a checkpoint file; checkpointVersion gates
// the codec. Bump the version on any incompatible format change — an
// old file is then rejected with a clear error instead of misread.
const (
	checkpointMagic   = "lvdist-checkpoint"
	checkpointVersion = 1
)

// Checkpoint is the durable record of a grid's completed rows. The
// GridHash pins the exact job grid (kind, setup and every payload), so
// a checkpoint left behind by an edited grid — different seeds,
// different flags, different row count — is detected as stale rather
// than silently merged into the wrong campaign.
type Checkpoint struct {
	Kind     string
	GridHash string
	// N is the grid size; row indices are in [0, N).
	N    int
	Rows []CheckpointRow
}

// CheckpointRow is one completed row: its grid index and its encoded
// result, verbatim.
type CheckpointRow struct {
	Index  int
	Result json.RawMessage
}

// ckptHeader is the first frame of a checkpoint file. Count is the
// exact number of row frames that follow: a file truncated at a frame
// boundary (otherwise indistinguishable from a smaller checkpoint) is
// detected as short.
type ckptHeader struct {
	Magic    string `json:"magic"`
	Version  int    `json:"version"`
	Kind     string `json:"kind"`
	GridHash string `json:"grid_hash"`
	N        int    `json:"n"`
	Count    int    `json:"count"`
}

// ckptRow is a row frame.
type ckptRow struct {
	Index  int             `json:"index"`
	Result json.RawMessage `json:"result"`
}

// GridHash content-hashes a job grid: the kind, the setup blob and
// every payload, length-delimited so concatenation ambiguities cannot
// collide. Two grids hash equal exactly when a checkpoint of one is
// valid for the other.
func GridHash(kind string, setup json.RawMessage, payloads []json.RawMessage) string {
	h := sha256.New()
	var lenBuf [8]byte
	write := func(b []byte) {
		binary.BigEndian.PutUint64(lenBuf[:], uint64(len(b)))
		_, _ = h.Write(lenBuf[:]) // hash.Hash.Write never fails
		_, _ = h.Write(b)
	}
	write([]byte(checkpointMagic))
	write([]byte(kind))
	write(setup)
	binary.BigEndian.PutUint64(lenBuf[:], uint64(len(payloads)))
	_, _ = h.Write(lenBuf[:]) // hash.Hash.Write never fails
	for _, p := range payloads {
		write(p)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Encode serializes the checkpoint: a header frame followed by one
// frame per row, rows sorted by index. Encoding a decoded checkpoint
// reproduces the input byte for byte (the round-trip stability the fuzz
// target pins).
func (c *Checkpoint) Encode() ([]byte, error) {
	rows := make([]CheckpointRow, len(c.Rows))
	copy(rows, c.Rows)
	sort.Slice(rows, func(i, j int) bool { return rows[i].Index < rows[j].Index })
	var buf bytes.Buffer
	if err := writeFrame(&buf, ckptHeader{
		Magic: checkpointMagic, Version: checkpointVersion,
		Kind: c.Kind, GridHash: c.GridHash, N: c.N, Count: len(rows),
	}); err != nil {
		return nil, err
	}
	for _, r := range rows {
		if r.Index < 0 || r.Index >= c.N {
			return nil, fmt.Errorf("dist: checkpoint row index %d outside grid [0,%d)", r.Index, c.N)
		}
		if isNullResult(r.Result) {
			return nil, fmt.Errorf("dist: checkpoint row %d has no result", r.Index)
		}
		if err := writeFrame(&buf, ckptRow{Index: r.Index, Result: r.Result}); err != nil {
			return nil, err
		}
	}
	return buf.Bytes(), nil
}

// DecodeCheckpoint parses and validates checkpoint bytes. Every failure
// mode — truncation, a corrupt length prefix, JSON garbage, an index
// outside the grid, duplicate or unsorted rows, a missing result — is
// an error, never a panic.
func DecodeCheckpoint(data []byte) (*Checkpoint, error) {
	r := bytes.NewReader(data)
	var h ckptHeader
	if err := readFrame(r, &h); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, errors.New("dist: checkpoint is empty")
		}
		return nil, fmt.Errorf("dist: checkpoint header: %w", err)
	}
	switch {
	case h.Magic != checkpointMagic:
		return nil, fmt.Errorf("dist: not a checkpoint file (magic %q)", h.Magic)
	case h.Version != checkpointVersion:
		return nil, fmt.Errorf("dist: checkpoint version %d, this binary speaks %d", h.Version, checkpointVersion)
	case h.N < 0:
		return nil, fmt.Errorf("dist: checkpoint grid size %d is negative", h.N)
	case h.Count < 0 || h.Count > h.N:
		return nil, fmt.Errorf("dist: checkpoint row count %d outside grid of %d", h.Count, h.N)
	}
	c := &Checkpoint{Kind: h.Kind, GridHash: h.GridHash, N: h.N}
	last := -1
	for i := 0; i < h.Count; i++ {
		var row ckptRow
		err := readFrame(r, &row)
		if errors.Is(err, io.EOF) {
			return nil, fmt.Errorf("dist: checkpoint truncated: %d of %d rows present: %w", i, h.Count, io.ErrUnexpectedEOF)
		}
		if err != nil {
			return nil, fmt.Errorf("dist: checkpoint row %d: %w", i, err)
		}
		switch {
		case row.Index < 0 || row.Index >= h.N:
			return nil, fmt.Errorf("dist: checkpoint row index %d outside grid [0,%d)", row.Index, h.N)
		case row.Index <= last:
			return nil, fmt.Errorf("dist: checkpoint rows out of order (%d after %d)", row.Index, last)
		case isNullResult(row.Result):
			return nil, fmt.Errorf("dist: checkpoint row %d has no result", row.Index)
		}
		last = row.Index
		c.Rows = append(c.Rows, CheckpointRow{Index: row.Index, Result: row.Result})
	}
	var extra json.RawMessage
	if err := readFrame(r, &extra); !errors.Is(err, io.EOF) {
		return nil, fmt.Errorf("dist: checkpoint has data beyond its %d declared rows", h.Count)
	}
	return c, nil
}

// isNullResult reports a missing row result: absent, empty or JSON
// null (what a nil RawMessage round-trips to).
func isNullResult(r json.RawMessage) bool {
	return len(r) == 0 || string(r) == "null"
}

// LoadCheckpoint reads and decodes the checkpoint at path.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	c, err := DecodeCheckpoint(data)
	if err != nil {
		return nil, fmt.Errorf("%w (file %s)", err, path)
	}
	return c, nil
}

// SaveCheckpoint writes the checkpoint durably: encode to a temporary
// file in the destination directory, sync, then rename over path. A
// crash at any instant leaves either the previous checkpoint or the new
// one, never a torn file.
func SaveCheckpoint(path string, c *Checkpoint) (err error) {
	data, err := c.Encode()
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("dist: checkpoint temp file: %w", err)
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			os.Remove(tmp) //lvlint:ignore errdrop best-effort cleanup on a path already reporting the original error
		}
	}()
	if _, err = f.Write(data); err != nil {
		f.Close() //lvlint:ignore errdrop the Write error is already being reported
		return fmt.Errorf("dist: writing checkpoint: %w", err)
	}
	if err = f.Sync(); err != nil {
		f.Close() //lvlint:ignore errdrop the Sync error is already being reported
		return fmt.Errorf("dist: syncing checkpoint: %w", err)
	}
	if err = f.Close(); err != nil {
		return fmt.Errorf("dist: closing checkpoint: %w", err)
	}
	if err = os.Rename(tmp, path); err != nil {
		return fmt.Errorf("dist: publishing checkpoint: %w", err)
	}
	return nil
}
