package dist

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/engine"
)

// Options configures one distributed grid run.
type Options struct {
	// Shards is the number of worker subprocesses. <= 0 executes the
	// grid in-process on an engine.Pool (the same code path the
	// supervisor degrades to when workers cannot be spawned); 1 runs a
	// single supervised worker.
	Shards int
	// Checkpoint, when non-empty, is the durable checkpoint file:
	// completed rows are flushed to it (atomic write-rename) as they
	// finish and once more before Run returns.
	Checkpoint string
	// Resume loads Checkpoint before running and only executes the rows
	// it does not already contain. A checkpoint whose grid hash does
	// not match the current grid is rejected with an error. A missing
	// checkpoint file starts fresh.
	Resume bool
	// Setup is handed to the kind's SetupFunc in every worker process
	// (and in local mode), and is part of the grid hash.
	Setup json.RawMessage
	// LocalWorkers bounds in-process execution (Shards <= 1 and the
	// degradation path); 0 selects GOMAXPROCS.
	LocalWorkers int
	// FlushEvery flushes the checkpoint after this many newly completed
	// rows; 0 selects 1 (every row — maximum durability).
	FlushEvery int
	// HeartbeatInterval is the worker ping period; 0 selects 500ms.
	HeartbeatInterval time.Duration
	// HeartbeatTimeout kills a worker silent for this long; 0 selects
	// 10s. It bounds silence, not job latency: workers heartbeat from a
	// side goroutine while computing.
	HeartbeatTimeout time.Duration
	// MaxRestarts bounds restarts per worker slot; 0 selects 3.
	// Negative means no restarts.
	MaxRestarts int
	// BackoffBase and BackoffMax shape the exponential restart backoff
	// (base<<gen, capped); 0 selects 250ms and 5s.
	BackoffBase, BackoffMax time.Duration
	// DrainTimeout bounds how long cancellation waits for in-flight
	// rows before killing workers; 0 selects 20s.
	DrainTimeout time.Duration
	// Command overrides the worker argv (tests). Empty selects the
	// current binary re-invoked with WorkerFlag.
	Command []string
	// Env appends to the workers' environment (tests use it to arm the
	// crash/wedge hooks).
	Env []string
	// Stderr receives supervision warnings; nil selects os.Stderr.
	Stderr io.Writer
}

// withDefaults fills zero fields.
func (o Options) withDefaults() Options {
	if o.FlushEvery <= 0 {
		o.FlushEvery = 1
	}
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = 500 * time.Millisecond
	}
	if o.HeartbeatTimeout <= 0 {
		o.HeartbeatTimeout = 10 * time.Second
	}
	if o.MaxRestarts == 0 {
		o.MaxRestarts = 3
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 250 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 5 * time.Second
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = 20 * time.Second
	}
	if len(o.Command) == 0 {
		o.Command = []string{os.Args[0], WorkerFlag}
	}
	if o.Stderr == nil {
		o.Stderr = os.Stderr
	}
	return o
}

// WorkerError is a job failure reported by a worker process, carrying
// the job's grid index.
type WorkerError struct {
	Index int
	Msg   string
}

func (e *WorkerError) Error() string {
	return fmt.Sprintf("dist: job %d failed: %s", e.Index, e.Msg)
}

// ErrStaleCheckpoint reports a -resume checkpoint that does not match
// the current grid.
var ErrStaleCheckpoint = errors.New("dist: checkpoint is stale")

// Run executes the job grid and returns the per-index results with
// MapPartial semantics: done[i] marks the rows that completed, and on
// cancellation or job failure the completed rows are still returned
// (and checkpointed) alongside the error. Results merge by index, so
// for deterministic runners the returned rows are byte-identical at
// any shard count — 0 (in-process), 1 or N.
func Run(ctx context.Context, kind string, payloads []json.RawMessage, opts Options) ([]json.RawMessage, []bool, error) {
	opts = opts.withDefaults()
	n := len(payloads)
	results := make([]json.RawMessage, n)
	done := make([]bool, n)
	hash := GridHash(kind, opts.Setup, payloads)

	var ck *ckWriter
	if opts.Checkpoint != "" {
		ck = &ckWriter{
			path:  opts.Checkpoint,
			every: opts.FlushEvery,
			c:     &Checkpoint{Kind: kind, GridHash: hash, N: n},
		}
		if opts.Resume {
			prev, err := LoadCheckpoint(opts.Checkpoint)
			switch {
			case errors.Is(err, os.ErrNotExist):
				fmt.Fprintf(opts.Stderr, "dist: no checkpoint at %s; starting fresh\n", opts.Checkpoint)
			case err != nil:
				return nil, nil, err
			case prev.Kind != kind || prev.N != n || prev.GridHash != hash:
				return nil, nil, fmt.Errorf("%w: %s was written for a different grid (kind %q, %d rows) — "+
					"the flags or seeds changed since it was written; delete it or rerun without -resume",
					ErrStaleCheckpoint, opts.Checkpoint, prev.Kind, prev.N)
			default:
				for _, row := range prev.Rows {
					results[row.Index] = row.Result
					done[row.Index] = true
				}
				ck.mu.Lock()
				ck.c.Rows = prev.Rows
				ck.mu.Unlock()
				fmt.Fprintf(opts.Stderr, "dist: resumed %d/%d rows from %s\n", len(prev.Rows), n, opts.Checkpoint)
			}
		}
	}

	pending := make([]int, 0, n)
	for i := range done {
		if !done[i] {
			pending = append(pending, i)
		}
	}

	var runErr error
	if len(pending) > 0 {
		if opts.Shards >= 1 {
			runErr = runSharded(ctx, kind, payloads, pending, results, done, ck, opts)
		} else {
			runErr = runLocal(ctx, kind, payloads, pending, results, done, ck, opts)
		}
	}

	if ck != nil {
		if err := ck.finalFlush(); err != nil && runErr == nil {
			runErr = err
		}
	}
	return results, done, runErr
}

// ckWriter accumulates completed rows and flushes them to the
// checkpoint file every `every` completions plus once at the end. Rows
// arrive from concurrent job goroutines; flushes rewrite the whole file
// atomically, so the on-disk checkpoint is always internally
// consistent.
type ckWriter struct {
	path  string
	every int

	mu         sync.Mutex
	c          *Checkpoint // guarded by mu
	sinceFlush int         // guarded by mu
	err        error       // guarded by mu; first flush failure, surfaced at the end
}

// add records one completed row and flushes if due.
func (w *ckWriter) add(index int, result json.RawMessage) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.c.Rows = append(w.c.Rows, CheckpointRow{Index: index, Result: result})
	w.sinceFlush++
	if w.sinceFlush >= w.every {
		w.flushLocked()
	}
}

// flushLocked writes the file; the first error is retained and later
// attempts are still made (a transient ENOSPC should not wedge the run).
func (w *ckWriter) flushLocked() {
	w.sinceFlush = 0
	if err := SaveCheckpoint(w.path, w.c); err != nil && w.err == nil {
		w.err = err
	}
}

// finalFlush writes the closing checkpoint and reports the first error
// any flush hit.
func (w *ckWriter) finalFlush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.flushLocked()
	return w.err
}

// runLocal executes the pending rows in-process on an engine.Pool —
// the Shards <= 1 mode and the degradation target when workers cannot
// be spawned. The kind's setup runs exactly as it would in a worker
// process, so both paths execute identical code per row.
func runLocal(ctx context.Context, kind string, payloads []json.RawMessage, pending []int,
	results []json.RawMessage, done []bool, ck *ckWriter, opts Options) error {

	setupFn, err := lookupKind(kind)
	if err != nil {
		return err
	}
	runner, err := setupFn(opts.Setup)
	if err != nil {
		return fmt.Errorf("dist: setup for kind %q: %w", kind, err)
	}
	pool := engine.New(opts.LocalWorkers)
	_, localDone, err := engine.MapPartialNotify(ctx, pool, len(pending), 0,
		func(ctx context.Context, i int) (json.RawMessage, error) {
			res, err := runner(ctx, payloads[pending[i]])
			if err != nil {
				return nil, err
			}
			results[pending[i]] = res
			return res, nil
		},
		func(i int) {
			if ck != nil {
				ck.add(pending[i], results[pending[i]])
			}
		})
	for i, d := range localDone {
		if d {
			done[pending[i]] = true
		}
	}
	return err
}

// joinIndexOrder joins per-index job errors in ascending index order,
// mirroring engine.Map's deterministic aggregation.
func joinIndexOrder(errs map[int]error) error {
	if len(errs) == 0 {
		return nil
	}
	idx := make([]int, 0, len(errs))
	for i := range errs {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	ordered := make([]error, 0, len(idx))
	for _, i := range idx {
		ordered = append(ordered, errs[i])
	}
	return errors.Join(ordered...)
}
