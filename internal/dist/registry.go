package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
)

// Runner executes one job of a registered kind: payload in, result out.
// It runs in a worker subprocess (one job at a time) or in-process (the
// local mode and the degradation path), so it must be safe for
// concurrent calls and derive all randomness from the payload — the
// determinism contract engine.Map established applies across the
// process boundary unchanged.
type Runner func(ctx context.Context, payload json.RawMessage) (json.RawMessage, error)

// SetupFunc builds a kind's Runner from the grid's setup blob. It runs
// once per worker process (and once per local run): register custom
// workload profiles, build the per-process engine, parse tuning.
type SetupFunc func(setup json.RawMessage) (Runner, error)

var (
	registryMu sync.Mutex
	registry   = map[string]SetupFunc{} // guarded by registryMu
)

// Register installs the setup function for a job kind. Kinds are
// registered from package init functions (internal/sim registers the
// simulation kinds), so every binary that can supervise a grid can also
// be re-invoked as its worker. Re-registering a kind replaces it.
func Register(kind string, setup SetupFunc) {
	registryMu.Lock()
	defer registryMu.Unlock()
	registry[kind] = setup
}

// lookupKind returns the registered setup function for kind.
func lookupKind(kind string) (SetupFunc, error) {
	registryMu.Lock()
	defer registryMu.Unlock()
	setup, ok := registry[kind]
	if !ok {
		return nil, fmt.Errorf("dist: job kind %q is not registered in this binary", kind)
	}
	return setup, nil
}
