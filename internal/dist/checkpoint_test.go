package dist

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sampleCheckpoint() *Checkpoint {
	return &Checkpoint{
		Kind:     "sim.row",
		GridHash: GridHash("sim.row", []byte(`{"workers":2}`), []json.RawMessage{[]byte(`{"seed":1}`), []byte(`{"seed":2}`), []byte(`{"seed":3}`)}),
		N:        3,
		Rows: []CheckpointRow{
			{Index: 2, Result: []byte(`{"cpi":1.25}`)},
			{Index: 0, Result: []byte(`{"cpi":0.5}`)},
		},
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	c := sampleCheckpoint()
	data, err := c.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := DecodeCheckpoint(data)
	if err != nil {
		t.Fatalf("DecodeCheckpoint: %v", err)
	}
	if got.Kind != c.Kind || got.GridHash != c.GridHash || got.N != c.N {
		t.Fatalf("header mismatch: %+v", got)
	}
	// Encode sorts rows by index.
	if len(got.Rows) != 2 || got.Rows[0].Index != 0 || got.Rows[1].Index != 2 {
		t.Fatalf("rows mismatch: %+v", got.Rows)
	}
	if string(got.Rows[0].Result) != `{"cpi":0.5}` {
		t.Fatalf("row 0 result: %s", got.Rows[0].Result)
	}
	again, err := got.Encode()
	if err != nil {
		t.Fatalf("re-Encode: %v", err)
	}
	if string(again) != string(data) {
		t.Fatal("Encode(Decode(x)) != x: checkpoint encoding is not stable")
	}
}

func TestCheckpointRejectsCorruption(t *testing.T) {
	c := sampleCheckpoint()
	good, err := c.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	cases := map[string][]byte{
		"empty":         {},
		"garbage":       []byte("definitely not a checkpoint"),
		"bad magic":     mustEncodeRaw(t, ckptHeader{Magic: "nope", Version: checkpointVersion, N: 1}),
		"wrong version": mustEncodeRaw(t, ckptHeader{Magic: checkpointMagic, Version: checkpointVersion + 1, N: 1}),
		"negative n":    mustEncodeRaw(t, ckptHeader{Magic: checkpointMagic, Version: checkpointVersion, N: -1}),
	}
	// Every truncation of a valid file must fail, not decode partially.
	for cut := 1; cut < len(good); cut++ {
		cases["truncated"] = good[:cut]
		for name, data := range cases {
			if _, err := DecodeCheckpoint(data); err == nil {
				t.Fatalf("%s: decoded without error", name)
			}
		}
		delete(cases, "truncated")
	}
}

func TestCheckpointRejectsBadRows(t *testing.T) {
	header := ckptHeader{Magic: checkpointMagic, Version: checkpointVersion, Kind: "k", N: 3, Count: 0}
	cases := map[string][]ckptRow{
		"index below range": {{Index: -1, Result: []byte(`1`)}},
		"index above range": {{Index: 3, Result: []byte(`1`)}},
		"duplicate index":   {{Index: 1, Result: []byte(`1`)}, {Index: 1, Result: []byte(`2`)}},
		"out of order":      {{Index: 2, Result: []byte(`1`)}, {Index: 0, Result: []byte(`2`)}},
		"missing result":    {{Index: 0}},
	}
	for name, rows := range cases {
		h := header
		h.Count = len(rows)
		data := mustEncodeRaw(t, h)
		for _, r := range rows {
			data = append(data, mustEncodeRaw(t, r)...)
		}
		if _, err := DecodeCheckpoint(data); err == nil {
			t.Fatalf("%s: decoded without error", name)
		}
	}
}

// mustEncodeRaw writes arbitrary frames so tests can build malformed
// checkpoints the public encoder refuses to produce.
func mustEncodeRaw(t *testing.T, v any) []byte {
	t.Helper()
	var buf strings.Builder
	if err := writeFrame(&buf, v); err != nil {
		t.Fatalf("writeFrame: %v", err)
	}
	return []byte(buf.String())
}

func TestGridHashSensitivity(t *testing.T) {
	payloads := []json.RawMessage{[]byte(`{"a":1}`), []byte(`{"b":2}`)}
	base := GridHash("k", []byte(`{}`), payloads)
	if GridHash("k2", []byte(`{}`), payloads) == base {
		t.Fatal("kind change did not change the hash")
	}
	if GridHash("k", []byte(`{"x":1}`), payloads) == base {
		t.Fatal("setup change did not change the hash")
	}
	if GridHash("k", []byte(`{}`), payloads[:1]) == base {
		t.Fatal("payload count change did not change the hash")
	}
	if GridHash("k", []byte(`{}`), []json.RawMessage{[]byte(`{"a":1}`), []byte(`{"b":3}`)}) == base {
		t.Fatal("payload content change did not change the hash")
	}
	// Length delimiting: moving a boundary without changing the
	// concatenation must still change the hash.
	if GridHash("k", []byte(`{}`), []json.RawMessage{[]byte(`{"a":1}{"b`), []byte(`":2}`)}) == base {
		t.Fatal("shifting a payload boundary did not change the hash")
	}
	if GridHash("k", []byte(`{}`), payloads) != base {
		t.Fatal("hash is not deterministic")
	}
}

func TestSaveLoadCheckpointAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "campaign.ckpt")
	c := sampleCheckpoint()
	if err := SaveCheckpoint(path, c); err != nil {
		t.Fatalf("SaveCheckpoint: %v", err)
	}
	// Overwrite with more rows, as a running campaign does.
	c.Rows = append(c.Rows, CheckpointRow{Index: 1, Result: []byte(`{"cpi":0.75}`)})
	if err := SaveCheckpoint(path, c); err != nil {
		t.Fatalf("SaveCheckpoint (overwrite): %v", err)
	}
	got, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatalf("LoadCheckpoint: %v", err)
	}
	if len(got.Rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(got.Rows))
	}
	// No temp droppings left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries, want just the checkpoint", len(entries))
	}
	if _, err := LoadCheckpoint(filepath.Join(dir, "missing.ckpt")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing file: got %v, want ErrNotExist", err)
	}
}

// FuzzCheckpointRoundTrip pins the decoder against arbitrary bytes: it
// must never panic, and any input it accepts must re-encode to a stable
// normal form (Encode∘Decode is idempotent after one normalization).
func FuzzCheckpointRoundTrip(f *testing.F) {
	good, err := sampleCheckpoint().Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	empty, err := (&Checkpoint{Kind: "k", GridHash: "h", N: 0}).Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(empty)
	f.Add([]byte{})
	f.Add([]byte("garbage"))
	f.Add(good[:len(good)/2])
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := DecodeCheckpoint(data)
		if err != nil {
			return // rejected inputs just need to not panic
		}
		enc1, err := c.Encode()
		if err != nil {
			t.Fatalf("accepted checkpoint failed to encode: %v", err)
		}
		c2, err := DecodeCheckpoint(enc1)
		if err != nil {
			t.Fatalf("re-decode of normalized encoding failed: %v", err)
		}
		enc2, err := c2.Encode()
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if string(enc1) != string(enc2) {
			t.Fatal("encode/decode/encode is not stable")
		}
	})
}
