package dist

import (
	"context"
	"io"
	"path/filepath"
	"testing"
)

// BenchmarkShardOverhead measures the fixed cost of the distributed
// harness: the same small grid of near-free jobs run in-process and
// under worker subprocesses. Because the jobs themselves cost almost
// nothing, the sharded number is dominated by process spawn, handshake
// and frame traffic — the per-campaign overhead a real grid amortizes
// over expensive simulation rows. bench.sh records the sharded/local
// ratio as shard_overhead.
func BenchmarkShardOverhead(b *testing.B) {
	const n = 16
	payloads := testGrid(n)
	run := func(b *testing.B, opts Options) {
		opts.Stderr = io.Discard
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, done, err := Run(context.Background(), testKind, payloads, opts)
			if err != nil {
				b.Fatal(err)
			}
			for j := range done {
				if !done[j] {
					b.Fatalf("row %d not done", j)
				}
			}
		}
	}
	b.Run("local", func(b *testing.B) { run(b, Options{}) })
	b.Run("shards=2", func(b *testing.B) { run(b, Options{Shards: 2}) })
}

// BenchmarkResumeLatency measures how long -resume takes on a finished
// campaign: load the checkpoint, verify its grid hash, prefill every
// row, and write the final flush — no job executes. This is the startup
// latency a crashed-and-restarted campaign pays before useful work
// resumes.
func BenchmarkResumeLatency(b *testing.B) {
	const n = 64
	payloads := testGrid(n)
	path := filepath.Join(b.TempDir(), "grid.ckpt")
	if _, _, err := Run(context.Background(), testKind, payloads,
		Options{Checkpoint: path, Stderr: io.Discard}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, done, err := Run(context.Background(), testKind, payloads,
			Options{Checkpoint: path, Resume: true, Stderr: io.Discard})
		if err != nil {
			b.Fatal(err)
		}
		for j := range done {
			if !done[j] {
				b.Fatal("resume failed to prefill every row")
			}
		}
	}
}
