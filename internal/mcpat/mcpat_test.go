package mcpat

import (
	"math"
	"testing"

	"repro/internal/dvfs"
	"repro/internal/energy"
)

func TestDefaultCoreValidates(t *testing.T) {
	if err := DefaultCore().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	if err := (Core{}).Validate(); err == nil {
		t.Error("empty core must fail")
	}
	if err := (Core{Components: []Component{{Name: "", DynamicPJ: 1}}}).Validate(); err == nil {
		t.Error("unnamed component must fail")
	}
	if err := (Core{Components: []Component{{Name: "x", DynamicPJ: -1}}}).Validate(); err == nil {
		t.Error("negative energy must fail")
	}
	if err := (Core{Components: []Component{{Name: "x"}}}).Validate(); err == nil {
		t.Error("zero dynamic energy must fail")
	}
}

func TestDynamicEPIPlausible(t *testing.T) {
	// Cortex-A9-class 45nm cores run ~0.25-0.5 nJ/instruction at this
	// voltage range.
	epi := DefaultCore().DynamicEPIpJ()
	if epi < 200 || epi > 500 {
		t.Errorf("dynamic EPI = %.1f pJ, want 200-500", epi)
	}
}

func TestCacheAccessesDominateMemoryComponents(t *testing.T) {
	// The L1s are the biggest single dynamic consumers after the
	// aggregate clock/misc — that is why L1 fault tolerance matters for
	// energy at all.
	shares := DefaultCore().DynamicBreakdown()
	rank := map[string]int{}
	for i, s := range shares {
		rank[s.Name] = i
	}
	if rank["fetch/L1I access"] > 3 {
		t.Errorf("L1I access rank = %d, should be a top consumer", rank["fetch/L1I access"])
	}
	sum := 0.0
	for _, s := range shares {
		sum += s.Share
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("shares sum to %v", sum)
	}
}

func TestEnergyModelConsistency(t *testing.T) {
	// The abstract constants in energy.DefaultModel must be derivable
	// from this component model: same static-to-dynamic ratio and the
	// same L1 leakage share, within 10%.
	core := DefaultCore()
	em := energy.DefaultModel()

	wantRatio := em.CoreStaticPerRefCycle / em.CoreDynEPI
	gotRatio := core.StaticSharePerRefCycle(dvfs.Nominal().FreqMHz)
	if math.Abs(gotRatio-wantRatio)/wantRatio > 0.10 {
		t.Errorf("static/dynamic ratio: mcpat %.5f vs energy model %.5f", gotRatio, wantRatio)
	}

	if got, want := core.L1LeakageShare(), em.L1ShareOfCoreStatic; math.Abs(got-want)/want > 0.10 {
		t.Errorf("L1 leakage share: mcpat %.3f vs energy model %.3f", got, want)
	}
}

func TestLeakagePlausible(t *testing.T) {
	// Leakage should be a small fraction of total power at 760 mV for a
	// dynamic-dominated embedded design. At CPI 1 the core retires f
	// million instructions per second, so dynamic power in mW is
	// EPI[pJ] × f[MHz] × 1e-3 (pJ × 1e6/s = µW).
	core := DefaultCore()
	f := dvfs.Nominal().FreqMHz
	dynMW := core.DynamicEPIpJ() * f * 1e-3
	if dynMW < 300 || dynMW > 900 {
		t.Errorf("dynamic power = %.1f mW at 760 mV, want a few hundred mW", dynMW)
	}
	leakFrac := core.LeakageMW() / (core.LeakageMW() + dynMW)
	if leakFrac < 0.005 || leakFrac > 0.08 {
		t.Errorf("leakage fraction of total power = %.3f, want a few percent (dyn %.1f mW, leak %.2f mW)",
			leakFrac, dynMW, core.LeakageMW())
	}
}
