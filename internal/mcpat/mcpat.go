// Package mcpat is a small component-level processor power model in the
// spirit of McPAT [33], standing in for the authors' McPAT runs. It
// builds the paper's core (Table I: 2-way superscalar, ARM Cortex-A9
// class) out of named components — fetch, decode, rename/issue, ALUs,
// load/store queue, ROB, register files, branch predictor, the two L1s —
// each with a per-access dynamic energy and a leakage power, and produces
// the aggregate quantities the energy model needs: dynamic energy per
// instruction, static power, and the L1 share of leakage.
//
// Like the cacti package, this is an analytic model with calibrated
// constants rather than an extracted netlist: the constants are chosen so
// the aggregate matches the energy model's calibration anchors (a
// dynamic-dominated embedded core at 760 mV; see DESIGN.md anchor 5),
// while the *structure* — which component costs what, per which event —
// is explicit and testable. energy.DefaultModel's abstract constants can
// be cross-checked against this model (see TestEnergyModelConsistency).
package mcpat

import (
	"fmt"
	"sort"
)

// Component is one block of the core power breakdown.
type Component struct {
	Name string
	// DynamicPJ is the energy of one access/event in picojoules at the
	// reference voltage (760 mV).
	DynamicPJ float64
	// AccessesPerInstr is the average event count per instruction for the
	// paper's workloads (fetch touches every instruction; the FP ALU
	// almost none on integer-heavy embedded codes).
	AccessesPerInstr float64
	// LeakageMW is the component's leakage power in milliwatts at the
	// reference voltage.
	LeakageMW float64
	// IsL1 marks the two L1 caches, whose leakage a fault-tolerance
	// scheme scales by its Table III factor.
	IsL1 bool
}

// Core is the full component list.
type Core struct {
	Components []Component
}

// DefaultCore returns the Table I configuration in 45 nm. Dynamic
// energies and leakage are in the range published for Cortex-A9-class
// cores (~0.5 nJ/instruction total at nominal voltage, leakage a few
// percent of total power at the 760 mV reference).
func DefaultCore() Core {
	return Core{Components: []Component{
		// Front end.
		{Name: "fetch/L1I access", DynamicPJ: 64, AccessesPerInstr: 1.0, LeakageMW: 0, IsL1: false},
		{Name: "L1I array", DynamicPJ: 0, AccessesPerInstr: 0, LeakageMW: 2.05, IsL1: true},
		{Name: "branch predictor (BHT+BTB)", DynamicPJ: 9, AccessesPerInstr: 1.0, LeakageMW: 0.25},
		{Name: "decode", DynamicPJ: 22, AccessesPerInstr: 1.0, LeakageMW: 0.35},
		// Back end.
		{Name: "rename/issue", DynamicPJ: 31, AccessesPerInstr: 1.0, LeakageMW: 0.7},
		{Name: "ROB (128 entries)", DynamicPJ: 18, AccessesPerInstr: 1.0, LeakageMW: 0.55},
		{Name: "INT regfile (128)", DynamicPJ: 24, AccessesPerInstr: 1.6, LeakageMW: 0.45},
		{Name: "FP regfile (128)", DynamicPJ: 24, AccessesPerInstr: 0.12, LeakageMW: 0.45},
		{Name: "INT ALUs (2)", DynamicPJ: 38, AccessesPerInstr: 0.62, LeakageMW: 0.5},
		{Name: "INT multiplier", DynamicPJ: 92, AccessesPerInstr: 0.04, LeakageMW: 0.2},
		{Name: "FP ALU+MULT", DynamicPJ: 110, AccessesPerInstr: 0.06, LeakageMW: 0.4},
		// Memory pipeline.
		{Name: "LSQ (64 entries)", DynamicPJ: 20, AccessesPerInstr: 0.37, LeakageMW: 0.3},
		{Name: "L1D access", DynamicPJ: 68, AccessesPerInstr: 0.37, LeakageMW: 0, IsL1: false},
		{Name: "L1D array", DynamicPJ: 0, AccessesPerInstr: 0, LeakageMW: 2.05, IsL1: true},
		// Everything else: clock tree, bypass, pipeline registers.
		{Name: "clock+bypass+misc", DynamicPJ: 55, AccessesPerInstr: 1.0, LeakageMW: 2.07},
	}}
}

// DynamicEPIpJ returns the core+L1 dynamic energy per instruction at the
// reference voltage, in picojoules.
func (c Core) DynamicEPIpJ() float64 {
	sum := 0.0
	for _, comp := range c.Components {
		sum += comp.DynamicPJ * comp.AccessesPerInstr
	}
	return sum
}

// LeakageMW returns total core+L1 leakage at the reference voltage.
func (c Core) LeakageMW() float64 {
	sum := 0.0
	for _, comp := range c.Components {
		sum += comp.LeakageMW
	}
	return sum
}

// L1LeakageShare returns the fraction of core leakage in the two L1
// arrays — the share a scheme's Table III static factor applies to.
func (c Core) L1LeakageShare() float64 {
	total := c.LeakageMW()
	if total == 0 {
		return 0
	}
	l1 := 0.0
	for _, comp := range c.Components {
		if comp.IsL1 {
			l1 += comp.LeakageMW
		}
	}
	return l1 / total
}

// StaticSharePerRefCycle converts leakage into the energy model's units:
// leakage energy per reference-frequency cycle, as a fraction of the
// dynamic energy per instruction. Dimensionally, mW divided by MHz is
// nanojoules per cycle, i.e. 1000 pJ per cycle.
func (c Core) StaticSharePerRefCycle(refFreqMHz float64) float64 {
	leakPJPerCycle := c.LeakageMW() / refFreqMHz * 1000
	return leakPJPerCycle / c.DynamicEPIpJ()
}

// Breakdown returns the per-component shares of dynamic EPI, largest
// first — the McPAT-style pie chart.
type Share struct {
	Name  string
	Share float64
}

// DynamicBreakdown lists each component's share of the dynamic EPI.
func (c Core) DynamicBreakdown() []Share {
	total := c.DynamicEPIpJ()
	var out []Share
	for _, comp := range c.Components {
		e := comp.DynamicPJ * comp.AccessesPerInstr
		if e == 0 {
			continue
		}
		out = append(out, Share{Name: comp.Name, Share: e / total})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Share > out[j].Share })
	return out
}

// Validate sanity-checks the component list.
func (c Core) Validate() error {
	if len(c.Components) == 0 {
		return fmt.Errorf("mcpat: empty core")
	}
	for _, comp := range c.Components {
		if comp.Name == "" {
			return fmt.Errorf("mcpat: unnamed component")
		}
		if comp.DynamicPJ < 0 || comp.AccessesPerInstr < 0 || comp.LeakageMW < 0 {
			return fmt.Errorf("mcpat: %s has negative parameters", comp.Name)
		}
	}
	if c.DynamicEPIpJ() <= 0 {
		return fmt.Errorf("mcpat: zero dynamic energy")
	}
	return nil
}
